//! Drift-adaptation benchmark: adaptive vs frozen planning when the
//! *true* device/cloud/link parameters wander away from the factory
//! profile. Writes `BENCH_adapt.json` at the repo root.
//!
//! What it measures:
//!
//! 1. **Adaptive vs frozen under drift** — for each nonzero walk
//!    half-width `w` in the grid, the same seeded fleet (identical
//!    truth trajectories: the drift walk draws from its own RNG
//!    stream) is served twice — once with the online profile
//!    estimator committing re-estimated, version-bumped profiles at
//!    deterministic burst boundaries, once frozen on the factory
//!    profile. Adaptive must meet the drift deadline at least as
//!    often as frozen in **every** cell and must not inflate the mean
//!    realized makespan (`adaptive_dominates_frozen`).
//! 2. **Zero-drift overhead** — with drift off, the adaptive observe
//!    path (per-stage EWMA folds + regression-window writes, realized
//!    times exactly equal to believed times so the commit gate never
//!    crosses) must cost <= 2% serial fleet throughput, best-of-reps
//!    wall clock (`zero_drift_overhead_ok`) — and the fleet digest
//!    must be byte-identical to a non-adaptive run
//!    (`zero_drift_byte_identical`).
//! 3. **Pool equivalence** — the adaptive drifting fleet through a
//!    real 8-worker pool must reproduce the serial report bit for bit
//!    (`pool_bit_identical`): adaptation is per-session state, so
//!    pooling cannot reorder it.
//!
//! Every boolean flag in the JSON is asserted `true`, so a `false`
//! anywhere fails the run (CI also greps the JSON for `: false`).
//!
//! ```text
//! cargo run -p mcdnn-bench --release --bin adapt_bench [-- --quick]
//! ```

use std::sync::Arc;
use std::time::Instant;

use mcdnn_bench::banner;
use mcdnn_bench::workload::{monotone_zoo_rate_profiles, SETUP_MS};
use mcdnn_partition::PlanCache;
use mcdnn_profile::AdaptConfig;
use mcdnn_runtime::WorkerPool;
use mcdnn_sim::{fleet, run_user, serve_fleet, serve_fleet_serial, DriftSpec, ServeConfig, ServeReport};

/// Walk half-widths swept by the drift grid (0 = calibration cell).
const WIDTHS: [f64; 3] = [0.0, 0.05, 0.10];
/// Maximum tolerated zero-drift serial slowdown (fraction).
const OVERHEAD_BUDGET: f64 = 0.02;
/// Session length for the overhead cell, fixed across quick/full mode
/// so both measure the same per-session cost.
const OVERHEAD_BURSTS: usize = 100;
const POOL_WORKERS: usize = 8;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (users, bursts, reps) = if quick { (8, 100, 25) } else { (24, 240, 25) };

    banner(
        "Drift-adaptation benchmark",
        "online profile learning dominates frozen planning under drift, free at zero drift",
    );

    let profiles = monotone_zoo_rate_profiles(SETUP_MS);
    let base = ServeConfig {
        bursts_per_user: bursts,
        fault_every: 0,
        degrade_prob: 0.0,
        ..ServeConfig::default()
    };
    println!(
        "fleet: {users} users x {bursts} bursts over {} zoo models",
        profiles.len()
    );

    // 1. Drift grid: frozen vs adaptive on identical truth trajectories.
    mcdnn_obs::set_enabled(true);
    let mut rows = Vec::new();
    let mut dominates = true;
    for width in WIDTHS {
        let frozen_cfg = ServeConfig {
            drift: drift(width),
            adapt: None,
            ..base
        };
        let adaptive_cfg = ServeConfig {
            adapt: Some(AdaptConfig::default()),
            ..frozen_cfg
        };
        let specs = fleet(&profiles, users, &frozen_cfg);
        let cache = PlanCache::new();
        let frozen = serve_fleet_serial(&cache, &specs, &frozen_cfg).expect("fleet serves");
        let adaptive = serve_fleet_serial(&cache, &specs, &adaptive_cfg).expect("fleet serves");
        let (fh, ah) = (hit_rate(&frozen), hit_rate(&adaptive));
        let (fm, am) = (mean_ms(&frozen), mean_ms(&adaptive));
        if width > 0.0 {
            dominates &= ah >= fh && am <= fm * 1.01;
        }
        println!(
            "  drift {width:.2}: hit rate frozen {fh:.3} -> adaptive {ah:.3}, \
             mean ms frozen {fm:.2} -> adaptive {am:.2}, {} replans",
            adaptive.total_replans,
        );
        rows.push((width, fh, ah, fm, am, adaptive.total_replans));
    }

    // 3. Pool equivalence on the steepest drift cell.
    let drift_cfg = ServeConfig {
        drift: drift(*WIDTHS.last().expect("grid nonempty")),
        adapt: Some(AdaptConfig::default()),
        ..base
    };
    let specs = fleet(&profiles, users, &drift_cfg);
    let serial = serve_fleet_serial(&PlanCache::new(), &specs, &drift_cfg).expect("fleet serves");
    let pool = WorkerPool::new(POOL_WORKERS);
    let pool_cache = Arc::new(PlanCache::new());
    let pooled = serve_fleet(&pool, &pool_cache, &specs, &drift_cfg).expect("fleet serves");
    let pool_bit_identical = pooled == serial;
    println!(
        "pool: {POOL_WORKERS} workers reproduce the adaptive serial report bit-for-bit: {}",
        yn(pool_bit_identical),
    );

    // 2. Zero-drift: byte identity, then best-of-reps overhead with
    // observability off and a warm shared cache. The overhead cell
    // uses a fixed session length so quick and full mode measure the
    // same thing.
    let plain_cfg = ServeConfig {
        bursts_per_user: OVERHEAD_BURSTS,
        ..base
    };
    let idle_cfg = ServeConfig {
        adapt: Some(AdaptConfig::default()),
        ..plain_cfg
    };
    let specs = fleet(&profiles, users, &plain_cfg);
    let cache = PlanCache::new();
    let plain = serve_fleet_serial(&cache, &specs, &plain_cfg).expect("fleet serves");
    let idle = serve_fleet_serial(&cache, &specs, &idle_cfg).expect("fleet serves");
    let zero_drift_byte_identical =
        plain.fleet_digest == idle.fleet_digest && idle.total_replans == 0;
    println!(
        "zero drift: adaptive digest matches non-adaptive byte-for-byte: {} ({} replans)",
        yn(zero_drift_byte_identical),
        idle.total_replans,
    );

    // Throughput means what serve_bench means by it: jobs/sec over the
    // full per-user session (frontier fetch, ladder compile, every
    // burst). Each user is timed separately with the two configs
    // interleaved and each side's cost is the sum of per-user minima:
    // a scheduler stall poisons one sub-millisecond sample, the min
    // discards it, and the sums compare the unloaded floors. Both
    // sides are floor estimates, so a measurement that lands over
    // budget is retried (bounded) and the smallest overhead kept —
    // noise can only inflate the ratio, never deflate both floors.
    mcdnn_obs::set_enabled(false);
    let mut overhead = f64::INFINITY;
    for _attempt in 0..3 {
        let mut plain_secs = 0.0;
        let mut idle_secs = 0.0;
        for (i, spec) in specs.iter().enumerate() {
            let mut best = (f64::INFINITY, f64::INFINITY);
            for _rep in 0..reps {
                let started = Instant::now();
                let r = run_user(&cache, spec, &plain_cfg).expect("user serves");
                best.0 = best.0.min(started.elapsed().as_secs_f64());
                assert_eq!(r, plain.users[i], "rep diverged");
                let started = Instant::now();
                let r = run_user(&cache, spec, &idle_cfg).expect("user serves");
                best.1 = best.1.min(started.elapsed().as_secs_f64());
                assert_eq!(r, idle.users[i], "rep diverged");
            }
            plain_secs += best.0;
            idle_secs += best.1;
        }
        overhead = overhead.min(idle_secs / plain_secs - 1.0);
        if overhead <= OVERHEAD_BUDGET {
            break;
        }
    }
    mcdnn_obs::set_enabled(true);
    let zero_drift_overhead_ok = overhead <= OVERHEAD_BUDGET;
    println!(
        "zero drift: observe-path overhead {:+.2}% (budget {:.0}%), ok: {}",
        overhead * 1e2,
        OVERHEAD_BUDGET * 1e2,
        yn(zero_drift_overhead_ok),
    );

    let adaptive_dominates_frozen = dominates;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adapt.json");
    let grid_rows: Vec<String> = rows
        .iter()
        .map(|(w, fh, ah, fm, am, replans)| {
            format!(
                "    {{\"drift_width\": {w:.2}, \"frozen_hit_rate\": {fh:.4}, \
                 \"adaptive_hit_rate\": {ah:.4}, \"frozen_mean_ms\": {fm:.3}, \
                 \"adaptive_mean_ms\": {am:.3}, \"adaptive_replans\": {replans}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"generated_by\": \"cargo run -p mcdnn-bench --release --bin adapt_bench{}\",\n  \
         \"drift_model\": \"seeded multiplicative random walk on the true device/cloud/link parameters (link half-width w/2, per-stage jitter w/4) on RNG streams disjoint from the session walk, so frozen and adaptive runs face identical truth trajectories; a burst hits when its realized makespan stays within the drift slack of the factory frontier's prediction\",\n  \
         \"users\": {users},\n  \"bursts_per_user\": {bursts},\n  \"distinct_models\": {},\n  \
         \"grid\": [\n{}\n  ],\n  \
         \"adaptive_dominates_frozen\": {adaptive_dominates_frozen},\n  \
         \"pool_workers\": {POOL_WORKERS},\n  \"pool_bit_identical\": {pool_bit_identical},\n  \
         \"zero_drift_byte_identical\": {zero_drift_byte_identical},\n  \
         \"zero_drift_overhead_bursts\": {OVERHEAD_BURSTS},\n  \
         \"zero_drift_overhead_pct\": {:.2},\n  \
         \"zero_drift_overhead_budget_pct\": {:.0},\n  \
         \"zero_drift_overhead_ok\": {zero_drift_overhead_ok},\n  \
         \"fleet_digest\": \"{:#018x}\"\n}}\n",
        if quick { " -- --quick" } else { "" },
        profiles.len(),
        grid_rows.join(",\n"),
        overhead * 1e2,
        OVERHEAD_BUDGET * 1e2,
        serial.fleet_digest,
    );
    std::fs::write(path, json).expect("write json");
    println!("wrote {path}");

    assert!(
        adaptive_dominates_frozen,
        "a nonzero drift cell served fewer deadline hits (or slower bursts) adaptively than frozen"
    );
    assert!(pool_bit_identical, "pooled adaptive report diverged from serial");
    assert!(
        zero_drift_byte_identical,
        "adaptation at zero drift must be a byte-level no-op"
    );
    assert!(
        zero_drift_overhead_ok,
        "zero-drift observe path cost {:.2}% > {:.0}% budget",
        overhead * 1e2,
        OVERHEAD_BUDGET * 1e2
    );
}

fn drift(width: f64) -> DriftSpec {
    if width == 0.0 {
        return DriftSpec::none();
    }
    DriftSpec {
        device_walk: width,
        link_walk: width / 2.0,
        jitter: width / 4.0,
        ..DriftSpec::none()
    }
}

fn hit_rate(report: &ServeReport) -> f64 {
    report.total_hits as f64 / report.total_bursts.max(1) as f64
}

fn mean_ms(report: &ServeReport) -> f64 {
    let sum: f64 = report.users.iter().map(|u| u.mean_makespan_ms).sum();
    sum / report.users.len().max(1) as f64
}

fn yn(flag: bool) -> &'static str {
    if flag {
        "yes"
    } else {
        "NO"
    }
}
