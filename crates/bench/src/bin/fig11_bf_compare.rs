//! Fig. 11 — JPS vs the exact joint optimum (brute force) on AlexNet
//! and the synthetic AlexNet′ (communication volumes resampled from the
//! fitted exponential curve), over growing job counts.
//!
//! Paper claims: on AlexNet, JPS is optimal for small job counts; on
//! AlexNet′ (whose profile satisfies the theorems' smoothness
//! conditions) JPS always finds the optimal schedule.

use mcdnn::experiment::bf_comparison;
use mcdnn::prelude::*;
use mcdnn_bench::{banner, fmt_ms, fmt_opt_ms};

fn main() {
    banner(
        "Fig. 11 (JPS vs brute force)",
        "JPS matches BF on AlexNet' everywhere and on AlexNet for small n",
    );

    // Powers of two as on the paper's x-axis; BF is skipped where the
    // multiset enumeration exceeds the guard.
    let ns = [2usize, 4, 8, 16, 32, 128, 512];
    for model in [Model::AlexNet, Model::AlexNetPrime] {
        println!("### {model}\n");
        println!("| n | JPS ms | BF ms | gap % |");
        println!("|---|---|---|---|");
        for row in bf_comparison(model, &ns, NetworkModel::wifi()) {
            let gap = row
                .bf_ms
                .map(|bf| format!("{:.2}", (row.jps_ms / bf - 1.0) * 100.0))
                .unwrap_or_else(|| "—".to_string());
            println!(
                "| {} | {} | {} | {} |",
                row.n,
                fmt_ms(row.jps_ms),
                fmt_opt_ms(row.bf_ms),
                gap
            );
        }
        println!();
    }
}
