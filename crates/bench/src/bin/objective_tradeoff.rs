//! Extension experiment: makespan vs mean-completion objectives.
//!
//! The paper optimises makespan (throughput); interactive apps care
//! about mean frame completion. This quantifies what each objective
//! gives up when optimised for the other, across the evaluated models.

use mcdnn::prelude::*;
use mcdnn_bench::{banner, fmt_ms};
use mcdnn_partition::{flowtime_jps_plan, Strategy};

fn main() {
    banner(
        "Extension (objective trade-off)",
        "makespan-optimal and mean-completion-optimal plans genuinely differ",
    );

    let n = 50;
    println!("| model | net | objective | makespan (ms) | mean completion (ms) |");
    println!("|---|---|---|---|---|");
    for model in Model::EVALUATED {
        for (label, net) in [("4G", NetworkModel::four_g()), ("Wi-Fi", NetworkModel::wifi())] {
            let s = Scenario::paper_default(model, net);
            let ms_plan = Strategy::JpsBestMix.plan(s.profile(), n);
            let ft_plan = flowtime_jps_plan(s.profile(), n);
            println!(
                "| {model} | {label} | makespan | {} | {} |",
                fmt_ms(ms_plan.makespan_ms),
                fmt_ms(ms_plan.average_completion_ms(s.profile())),
            );
            println!(
                "| {model} | {label} | mean-completion | {} | {} |",
                fmt_ms(ft_plan.plan.makespan_ms),
                fmt_ms(ft_plan.mean_completion_ms),
            );
            assert!(ft_plan.mean_completion_ms <= ms_plan.average_completion_ms(s.profile()) + 1e-6);
            assert!(ms_plan.makespan_ms <= ft_plan.plan.makespan_ms + 1e-6);
        }
    }
    println!(
        "\nreading: each plan wins on its own objective (asserted); the \
         spread between the rows is the price of picking the wrong one."
    );
}
