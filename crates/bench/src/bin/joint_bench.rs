//! Joint cut/cloud-share allocation benchmark: deadline hit-rate of
//! the joint allocator against contention-oblivious frontier cuts on
//! the same seeded tenant fleet, across cloud pool sizes. Writes
//! `BENCH_joint.json` at the repo root.
//!
//! What it measures:
//!
//! 1. **Contention sweep** — for each pool size C ∈ {1, 2, 4, 8}, the
//!    EdfDegrade scheduler runs the identical request stream twice:
//!    contention-oblivious (every tenant keeps its frontier cut, the
//!    pool splits equally) and joint (`joint_allocate` water-filling +
//!    best-response shares, per-request best-response Normal-rung
//!    cuts). Joint must beat the oblivious hit rate at two or more
//!    contention levels (`joint_beats_at_two_levels`) and must move
//!    real cuts while doing it (`joint_moves_cuts`).
//! 2. **Pooled/serial equivalence** — the pooled joint run (8-worker
//!    [`WorkerPool`], sharded [`PlanCache`]) must be **bit-identical**
//!    to the single-lock serial reference (`pooled_bit_identical`):
//!    shares derive purely from the generated streams, so virtual time
//!    stays deterministic at any thread count.
//! 3. **Overload sweep at C = 2** — oblivious vs joint hit rate from
//!    an underloaded fleet (0.5x) to heavy saturation (4x), showing
//!    that the allocator's edge survives across load regimes.
//!
//! Every boolean flag in the JSON is asserted `true`, so a `false`
//! anywhere fails the run (CI also greps the JSON for `: false`).
//!
//! ```text
//! cargo run -p mcdnn-bench --release --bin joint_bench [-- --quick]
//! ```

use std::sync::Arc;
use std::time::Instant;

use mcdnn_bench::banner;
use mcdnn_bench::workload::{monotone_zoo_cloud_rate_profiles, SETUP_MS};
use mcdnn_partition::PlanCache;
use mcdnn_runtime::WorkerPool;
use mcdnn_sim::{serve_slo, serve_slo_serial, slo_fleet, SloConfig, SloPolicy, SloReport};

const POOL_WORKERS: usize = 8;
const CONTENTION_LEVELS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (tenants, requests) = if quick { (10, 60) } else { (24, 300) };

    banner(
        "Joint cut/cloud-share allocation benchmark",
        "joint allocation beats contention-oblivious frontier cuts under a finite cloud pool",
    );

    // Suffix compute is costed on the reference cloud GPU so the pool
    // has real work to stretch; the fleet is seeded exactly like
    // slo_bench's, just on the cloud-aware profiles.
    let profiles = monotone_zoo_cloud_rate_profiles(SETUP_MS);
    let base = SloConfig {
        requests_per_tenant: requests,
        ..SloConfig::default()
    };
    let fleet = slo_fleet(&profiles, tenants, &base);
    println!(
        "fleet: {tenants} tenants x {requests} requests over {} zoo models, \
         {:.1}x offered uplink load, cloud pool swept over {CONTENTION_LEVELS:?}",
        profiles.len(),
        base.overload,
    );

    // 1. Contention sweep: oblivious vs joint at each pool size.
    let serial_cache = PlanCache::with_shards(1);
    let mut levels: Vec<(usize, SloReport, SloReport)> = Vec::new();
    for c in CONTENTION_LEVELS {
        let oblivious_cfg = SloConfig {
            cloud_servers: c,
            ..base.clone()
        };
        let joint_cfg = SloConfig {
            joint_alloc: true,
            ..oblivious_cfg.clone()
        };
        let oblivious = serve_slo_serial(&serial_cache, &fleet, &oblivious_cfg, SloPolicy::EdfDegrade)
            .expect("oblivious serves");
        let joint = serve_slo_serial(&serial_cache, &fleet, &joint_cfg, SloPolicy::EdfDegrade)
            .expect("joint serves");
        println!(
            "  C={c}: oblivious {:.1}% vs joint {:.1}% ({:+.1} pts), \
             {} joint cut overrides, cloud busy {:.0} vs {:.0} ms",
            oblivious.hit_rate * 100.0,
            joint.hit_rate * 100.0,
            (joint.hit_rate - oblivious.hit_rate) * 100.0,
            joint.joint_overrides,
            oblivious.cloud_busy_ms,
            joint.cloud_busy_ms,
        );
        levels.push((c, oblivious, joint));
    }
    let joint_wins = levels
        .iter()
        .filter(|(_, o, j)| j.hit_rate > o.hit_rate)
        .count();
    let joint_beats_at_two_levels = joint_wins >= 2;
    let joint_moves_cuts = levels.iter().any(|(_, _, j)| j.joint_overrides > 0);

    // 2. Pooled/serial equivalence on the scarcest contended config.
    let equivalence_cfg = SloConfig {
        cloud_servers: 2,
        joint_alloc: true,
        ..base.clone()
    };
    let pool = WorkerPool::new(POOL_WORKERS);
    let cache = Arc::new(PlanCache::new());
    let started = Instant::now();
    let pooled = serve_slo(&pool, &cache, &fleet, &equivalence_cfg, SloPolicy::EdfDegrade)
        .expect("pooled joint serves");
    let pool_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let serial = serve_slo_serial(&serial_cache, &fleet, &equivalence_cfg, SloPolicy::EdfDegrade)
        .expect("serial joint serves");
    let pooled_bit_identical = pooled == serial;
    println!(
        "pooled joint run ({POOL_WORKERS} workers, {pool_wall_ms:.1} ms wall) \
         bit-identical to serial: {}",
        yn(pooled_bit_identical),
    );

    // 3. Overload sweep at C = 2.
    let mut sweep = Vec::new();
    for overload in [0.5, 1.0, 2.0, 4.0] {
        let oblivious_cfg = SloConfig {
            overload,
            cloud_servers: 2,
            ..base.clone()
        };
        let joint_cfg = SloConfig {
            joint_alloc: true,
            ..oblivious_cfg.clone()
        };
        let o = serve_slo_serial(&serial_cache, &fleet, &oblivious_cfg, SloPolicy::EdfDegrade)
            .expect("oblivious serves");
        let j = serve_slo_serial(&serial_cache, &fleet, &joint_cfg, SloPolicy::EdfDegrade)
            .expect("joint serves");
        println!(
            "  {overload:.1}x load at C=2: oblivious {:.1}% vs joint {:.1}%",
            o.hit_rate * 100.0,
            j.hit_rate * 100.0,
        );
        sweep.push((overload, o, j));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_joint.json");
    let level_rows: Vec<String> = levels
        .iter()
        .map(|(c, o, j)| {
            format!(
                "    {{\"cloud_servers\": {c}, \"oblivious\": {}, \"joint\": {}, \
                 \"joint_gain_pts\": {:.1}, \"joint_overrides\": {}}}",
                policy_json(o),
                policy_json(j),
                (j.hit_rate - o.hit_rate) * 100.0,
                j.joint_overrides,
            )
        })
        .collect();
    let sweep_rows: Vec<String> = sweep
        .iter()
        .map(|(overload, o, j)| {
            format!(
                "    {{\"overload\": {overload:.1}, \"oblivious_hit_rate\": {:.4}, \
                 \"joint_hit_rate\": {:.4}, \"joint_overrides\": {}}}",
                o.hit_rate, j.hit_rate, j.joint_overrides,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"generated_by\": \"cargo run -p mcdnn-bench --release --bin joint_bench{}\",\n  \
         \"tenants\": {tenants},\n  \"requests_per_tenant\": {requests},\n  \
         \"distinct_models\": {},\n  \"overload\": {:.1},\n  \
         \"contention_levels\": [\n{}\n  ],\n  \
         \"joint_wins\": {joint_wins},\n  \
         \"joint_beats_at_two_levels\": {joint_beats_at_two_levels},\n  \
         \"joint_moves_cuts\": {joint_moves_cuts},\n  \
         \"pool_workers\": {POOL_WORKERS},\n  \"pool_wall_ms\": {pool_wall_ms:.1},\n  \
         \"pooled_bit_identical\": {pooled_bit_identical},\n  \
         \"overload_sweep_c2\": [\n{}\n  ]\n}}\n",
        if quick { " -- --quick" } else { "" },
        profiles.len(),
        base.overload,
        level_rows.join(",\n"),
        sweep_rows.join(",\n"),
    );
    std::fs::write(path, json).expect("write json");
    println!("wrote {path}");

    assert!(pooled_bit_identical, "pooled joint report diverged from serial");
    assert!(
        joint_beats_at_two_levels,
        "joint beat oblivious at only {joint_wins} contention level(s), need >= 2"
    );
    assert!(
        joint_moves_cuts,
        "joint allocation never overrode a frontier cut — the allocator is inert"
    );
}

fn policy_json(r: &SloReport) -> String {
    format!(
        "{{\"hit_rate\": {:.4}, \"admitted\": {}, \"shed\": {}, \"degraded\": {}, \
         \"cloud_busy_ms\": {:.1}, \"p99_latency_ms\": {:.1}, \"digest\": \"{:#018x}\"}}",
        r.hit_rate,
        r.admitted,
        r.shed_queue_full + r.shed_infeasible,
        r.degraded,
        r.cloud_busy_ms,
        r.p99_latency_ms,
        r.digest,
    )
}

fn yn(flag: bool) -> &'static str {
    if flag {
        "yes"
    } else {
        "NO"
    }
}
