//! Shared profile/model setup for the bench binaries.
//!
//! `planner_bench`, `frontier_bench` and `serve_bench` all measure
//! against the same reference platform (a Raspberry Pi 4 class device,
//! negligible cloud, 10 ms channel setup) and the same two workload
//! families — real zoo models and seeded synthetic monotone profiles.
//! This module is the single definition of that boilerplate so the
//! benches cannot drift apart on platform constants.

use mcdnn_graph::LineDnn;
use mcdnn_models::Model;
use mcdnn_partition::RateProfile;
use mcdnn_profile::{CloudModel, CostProfile, DeviceModel, NetworkModel};
use mcdnn_rng::Rng;

/// Channel setup latency every bench assumes, ms.
pub const SETUP_MS: f64 = 10.0;

/// The benches' reference mobile device.
pub fn mobile_device() -> DeviceModel {
    DeviceModel::raspberry_pi4()
}

/// One zoo model pinned to the reference platform: the line view plus
/// the device, from which both profile flavours derive.
pub struct ModelWorkload {
    /// The model's line view.
    pub line: LineDnn,
    /// The reference mobile device.
    pub mobile: DeviceModel,
    /// Channel setup latency, ms.
    pub setup_ms: f64,
}

impl ModelWorkload {
    /// Pin `model` to the reference platform. `None` when the model has
    /// no line view.
    pub fn zoo(model: Model, setup_ms: f64) -> Option<ModelWorkload> {
        Some(ModelWorkload {
            line: model.line().ok()?,
            mobile: mobile_device(),
            setup_ms,
        })
    }

    /// The bandwidth-parameterized profile (frontier compilation).
    pub fn rate_profile(&self) -> RateProfile {
        RateProfile::evaluate(&self.line, &self.mobile, &CloudModel::Negligible, self.setup_ms)
    }

    /// The concrete cost profile at bandwidth `b` Mbps (direct-planner
    /// baselines).
    pub fn cost_profile_at(&self, bandwidth_mbps: f64) -> CostProfile {
        CostProfile::evaluate(
            &self.line,
            &self.mobile,
            &NetworkModel::new(bandwidth_mbps, self.setup_ms),
            &CloudModel::Negligible,
        )
    }
}

/// Every zoo model's rate profile on the reference platform, keeping
/// only those the JPS theory admits (monotone clustered shape) — the
/// fleet the serving bench and equivalence tests draw users from.
pub fn monotone_zoo_rate_profiles(setup_ms: f64) -> Vec<RateProfile> {
    Model::ALL
        .iter()
        .filter_map(|&m| ModelWorkload::zoo(m, setup_ms))
        .map(|w| w.rate_profile())
        .filter(|p| p.check_monotone().is_ok())
        .collect()
}

/// Like [`monotone_zoo_rate_profiles`] but with the suffix costed on
/// the reference cloud GPU instead of an infinitely fast one — the
/// fleet the cloud-contention bench and equivalence tests draw tenants
/// from, since a finite server pool needs nonzero cloud work to
/// stretch.
pub fn monotone_zoo_cloud_rate_profiles(setup_ms: f64) -> Vec<RateProfile> {
    let cloud = CloudModel::Device(DeviceModel::cloud_gtx1080());
    Model::ALL
        .iter()
        .filter_map(|&m| ModelWorkload::zoo(m, setup_ms))
        .map(|w| RateProfile::evaluate(&w.line, &w.mobile, &cloud, w.setup_ms))
        .filter(|p| p.check_monotone().is_ok())
        .collect()
}

/// Monotone synthetic profile with `k + 1` cut points: `f` strictly
/// increasing from 0, `g` non-increasing to 0 — the shape real
/// mobile/uplink profiles take (Fig. 4 of the paper).
pub fn synthetic_profile(k: usize, seed: u64) -> CostProfile {
    let mut rng = Rng::seed_from_u64(seed);
    let mut f = Vec::with_capacity(k + 1);
    f.push(0.0);
    let mut acc = 0.0;
    for _ in 0..k {
        acc += rng.gen_range(0.5..3.0);
        f.push(acc);
    }
    let mut g = Vec::with_capacity(k + 1);
    let mut rem = acc * rng.gen_range(0.8..1.2);
    for _ in 0..k {
        g.push(rem);
        rem = (rem - rng.gen_range(0.5..3.0)).max(0.0);
    }
    g.push(0.0);
    CostProfile::from_vectors(format!("synthetic-k{k}"), f, g, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_profiles_are_monotone_and_plentiful() {
        let profiles = monotone_zoo_rate_profiles(SETUP_MS);
        assert!(profiles.len() >= 4, "the zoo must yield a real fleet");
        for p in &profiles {
            assert!(p.check_monotone().is_ok());
        }
    }

    #[test]
    fn synthetic_profile_shape() {
        let p = synthetic_profile(12, 7);
        assert_eq!(p.k(), 12);
        assert!(p.f_is_monotone() && p.g_is_monotone());
    }

    #[test]
    fn workload_profiles_agree() {
        let w = ModelWorkload::zoo(Model::AlexNet, SETUP_MS).unwrap();
        let rate = w.rate_profile();
        let direct = w.cost_profile_at(10.0);
        let rebuilt = rate.profile_at(10.0);
        assert_eq!(rebuilt.f_all(), direct.f_all());
        assert_eq!(rebuilt.g_all(), direct.g_all());
    }
}
