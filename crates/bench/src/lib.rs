//! # mcdnn-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation section, plus a dependency-free planner micro-benchmark
//! (`planner_bench`). Run everything with:
//!
//! ```text
//! cargo run -p mcdnn-bench --release --bin fig04_alexnet_layers
//! cargo run -p mcdnn-bench --release --bin fig11_bf_compare
//! cargo run -p mcdnn-bench --release --bin fig12_latency
//! cargo run -p mcdnn-bench --release --bin fig12d_overhead
//! cargo run -p mcdnn-bench --release --bin fig13_bandwidth_sweep
//! cargo run -p mcdnn-bench --release --bin fig14_ratio_sweep
//! cargo run -p mcdnn-bench --release --bin table1_reduction
//! cargo run -p mcdnn-bench --release --bin fig02_toy
//! cargo run -p mcdnn-bench --release --bin planner_bench
//! ```
//!
//! Each binary prints the regenerated rows/series in markdown and notes
//! the paper's qualitative claim it reproduces; `EXPERIMENTS.md` at the
//! repo root records paper-vs-measured per experiment. `planner_bench`
//! times the O(1)-kernel planner hot path against the pre-refactor
//! reference implementation and writes `BENCH_planner.json` at the repo
//! root. Sweep-style binaries fan their scenario grids out over a
//! `std`-only worker pool ([`mcdnn_runtime::parallel_map`]); set
//! `MCDNN_THREADS=1` for fully serial runs.

pub mod workload;

/// Format a millisecond value compactly for tables.
pub fn fmt_ms(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}s", v / 1000.0)
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Format an optional millisecond value.
pub fn fmt_opt_ms(v: Option<f64>) -> String {
    v.map_or_else(|| "—".to_string(), fmt_ms)
}

/// Print a section banner matching the figure/table id.
pub fn banner(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("paper claim: {claim}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(3.17), "3.2");
        assert_eq!(fmt_ms(250.4), "250");
        assert_eq!(fmt_ms(12_345.0), "12.3s");
        assert_eq!(fmt_opt_ms(None), "—");
        assert_eq!(fmt_opt_ms(Some(5.0)), "5.0");
    }
}
