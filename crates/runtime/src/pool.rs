//! A persistent worker pool for steady-state serving loops.
//!
//! [`crate::parallel_map`] spawns scoped OS threads per batch — the
//! right shape for experiment sweeps, where thread startup amortizes
//! over seconds of work. A serving loop admits small bursts forever,
//! so [`WorkerPool`] keeps its threads alive across submissions:
//!
//! * **Per-worker injection queues.** Tasks are submitted round-robin
//!   to per-worker deques, so concurrent submitters do not serialize on
//!   one global queue lock.
//! * **Work stealing.** An idle worker pops its own queue from the
//!   front, then steals from the *back* of its siblings' queues, so a
//!   skewed submission pattern still balances.
//! * **Graceful shutdown.** Dropping the pool wakes every worker;
//!   each drains the remaining queued tasks before exiting, so no
//!   submitted task is silently dropped.
//!
//! Safe Rust only: queues are `Mutex<VecDeque<..>>`, parking is a
//! single `Condvar`, and results flow back through per-task slots. The
//! steady-state cost of an uncontended `Mutex` lock/unlock is two
//! atomic operations — no allocation — so a warm serving loop built on
//! the pool stays allocation-free outside of task submission itself
//! (each spawned task boxes its closure once).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct PoolState {
    /// One injection queue per worker; submitters push to the back,
    /// the owner pops from the front, thieves steal from the back.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks pushed but not yet popped by any worker.
    pending: AtomicUsize,
    /// Set once by `Drop`; workers drain their queues and exit.
    shutdown: AtomicBool,
    /// A task panicked (the panic payload is swallowed by the worker
    /// so the pool survives; [`WorkerPool::run_indexed`] re-raises).
    panicked: AtomicBool,
    /// Parking lot: workers wait here when every queue is empty.
    gate: Mutex<()>,
    ready: Condvar,
}

impl PoolState {
    /// Pop a task: own queue front first, then steal from siblings'
    /// backs. Decrements `pending` exactly when a task is obtained.
    fn take(&self, me: usize) -> Option<Task> {
        let n = self.queues.len();
        for off in 0..n {
            let q = (me + off) % n;
            let task = self.queues[q].lock().expect("queue poisoned").pop_front();
            if let Some(task) = task {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                if off != 0 {
                    mcdnn_obs::counter_add("runtime.pool.steals", 1);
                }
                return Some(task);
            }
        }
        None
    }
}

/// A fixed-size pool of long-lived worker threads. See the module docs
/// for the queueing discipline.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let pool = mcdnn_runtime::WorkerPool::new(4);
/// let hits = Arc::new(AtomicU64::new(0));
/// for _ in 0..100 {
///     let hits = Arc::clone(&hits);
///     pool.spawn(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// let squares = pool.run_indexed(8, |i| (i * i) as u64);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// drop(pool); // graceful: drains the queue before joining
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct WorkerPool {
    state: Arc<PoolState>,
    handles: Vec<JoinHandle<()>>,
    /// Round-robin submission cursor.
    next: AtomicUsize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("pending", &self.state.pending.load(Ordering::Acquire))
            .finish()
    }
}

impl WorkerPool {
    /// Start a pool of `workers ≥ 1` threads.
    pub fn new(workers: usize) -> WorkerPool {
        assert!(workers >= 1, "a pool needs at least one worker");
        let state = Arc::new(PoolState {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            gate: Mutex::new(()),
            ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|me| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("mcdnn-pool-{me}"))
                    .spawn(move || worker_loop(&state, me))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            state,
            handles,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Submit a task. Tasks run in submission order per queue but
    /// interleave freely across workers; panics inside a task are
    /// caught (the pool survives and flags them for `run_indexed`).
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.state.queues.len();
        self.state.queues[w]
            .lock()
            .expect("queue poisoned")
            .push_back(Box::new(task));
        // Publish before waking: a worker that checked `pending` just
        // before this increment re-checks under the gate lock.
        self.state.pending.fetch_add(1, Ordering::Release);
        mcdnn_obs::counter_add("runtime.pool.tasks", 1);
        let _g = self.state.gate.lock().expect("gate poisoned");
        self.state.ready.notify_one();
    }

    /// Run `f(0..n)` across the pool and return results in index
    /// order — the parallel-for of the serving loop. Blocks the caller
    /// until every index completes; re-raises if any invocation
    /// panicked. Must not be called from inside a pool task (the wait
    /// would occupy a worker).
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let slots: Arc<Vec<Mutex<Option<R>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for i in 0..n {
            let f = Arc::clone(&f);
            let slots = Arc::clone(&slots);
            let done = Arc::clone(&done);
            let state = Arc::clone(&self.state);
            self.spawn(move || {
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(r) => *slots[i].lock().expect("slot poisoned") = Some(r),
                    Err(_) => state.panicked.store(true, Ordering::Release),
                }
                let (count, cv) = &*done;
                *count.lock().expect("completion count poisoned") += 1;
                cv.notify_all();
            });
        }
        let (count, cv) = &*done;
        let mut finished = count.lock().expect("completion count poisoned");
        while *finished < n {
            finished = cv.wait(finished).expect("completion wait poisoned");
        }
        drop(finished);
        assert!(
            !self.state.panicked.swap(false, Ordering::AcqRel),
            "a pool task panicked"
        );
        // Take through the mutexes rather than unwrapping the Arc: the
        // last task bumps the completion count *before* its closure
        // (and its `slots` clone) is dropped, so the Arc may still be
        // shared for an instant after the wait returns.
        slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("slot poisoned")
                    .take()
                    .expect("every index filled its slot")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        {
            let _g = self.state.gate.lock().expect("gate poisoned");
            self.state.ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(state: &PoolState, me: usize) {
    loop {
        if let Some(task) = state.take(me) {
            // A panicking task must not take the worker down with it:
            // flag it and keep serving.
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            continue;
        }
        let guard = state.gate.lock().expect("gate poisoned");
        if state.pending.load(Ordering::Acquire) > 0 {
            continue; // a submission raced in; retry the queues
        }
        if state.shutdown.load(Ordering::Acquire) {
            return; // queues drained and shutting down
        }
        // Wait releases the gate; `spawn` bumps `pending` before
        // taking it, so the re-check above cannot miss a wakeup.
        let _unused = state.ready.wait(guard).expect("gate wait poisoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_indexed_preserves_order_and_matches_serial() {
        let pool = WorkerPool::new(4);
        let out = pool.run_indexed(257, |i| (i as f64 * 0.37).sin());
        let serial: Vec<f64> = (0..257).map(|i| (i as f64 * 0.37).sin()).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let work = |i: usize| {
            let mut acc = i as u64;
            for _ in 0..(if i.is_multiple_of(7) { 10_000 } else { 10 }) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let one = WorkerPool::new(1).run_indexed(100, work);
        let eight = WorkerPool::new(8).run_indexed(100, work);
        assert_eq!(one, eight, "worker count must not change results");
    }

    #[test]
    fn pool_survives_reuse_across_many_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let out = pool.run_indexed(17, move |i| i + round);
            assert_eq!(out, (0..17).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn drop_drains_spawned_tasks() {
        let hits = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..500 {
                let hits = Arc::clone(&hits);
                pool.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(hits.load(Ordering::Relaxed), 500, "graceful drain");
    }

    #[test]
    fn empty_run_indexed() {
        let pool = WorkerPool::new(2);
        let out: Vec<u32> = pool.run_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "a pool task panicked")]
    fn task_panic_is_reraised_by_run_indexed() {
        let pool = WorkerPool::new(2);
        let _ = pool.run_indexed(8, |i| {
            assert!(i != 5, "boom");
            i
        });
    }

    #[test]
    fn pool_survives_a_panicking_spawn() {
        let pool = WorkerPool::new(2);
        pool.spawn(|| panic!("spawned task panics"));
        // The pool keeps serving; the flag surfaces on a later
        // run_indexed (poll — the panicking task runs asynchronously),
        // which re-raises and resets it.
        let mut reraised = false;
        for _ in 0..500 {
            if catch_unwind(AssertUnwindSafe(|| pool.run_indexed(4, |i| i))).is_err() {
                reraised = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(reraised, "panic flag re-raised");
        let out = pool.run_indexed(4, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6], "pool healthy after re-raise");
    }

    #[test]
    fn stealing_balances_a_skewed_queue() {
        // Submit everything before any worker can finish: the
        // round-robin cursor spreads tasks, and steals cover the rest.
        mcdnn_obs::set_enabled(true);
        let pool = WorkerPool::new(4);
        let out = pool.run_indexed(64, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out.len(), 64);
    }
}
