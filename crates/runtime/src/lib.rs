//! # mcdnn-runtime
//!
//! A zero-dependency parallel sweep executor. The experiment harness
//! evaluates many *independent* scenarios — one per bandwidth, ratio,
//! burst trace or model — and each evaluation is pure CPU work with no
//! shared state, so a scoped-thread work queue gets near-linear speedup
//! without any external crates.
//!
//! Design:
//!
//! * [`parallel_map`] preserves input order in its output, so swapping
//!   it in for `iter().map().collect()` changes nothing downstream.
//! * Work is distributed dynamically through a shared atomic cursor
//!   (a work queue, not static chunking), so skewed per-item costs —
//!   brute-force points next to closed-form points — still balance.
//! * Worker count comes from [`worker_threads`]: the `MCDNN_THREADS`
//!   environment variable when set, else `available_parallelism`, and
//!   never more threads than items.
//! * Panics in workers propagate: the scope joins all threads and
//!   re-raises, so a failing scenario cannot be silently dropped.
//!
//! For steady-state serving loops — many small batches forever, where
//! per-batch thread spawns would dominate — use the persistent
//! [`WorkerPool`] in [`pool`] instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

pub use pool::WorkerPool;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads sweeps should use: `MCDNN_THREADS` if set
/// to a positive integer, otherwise the machine's available
/// parallelism, with a floor of 1.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("MCDNN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every item of `items` across [`worker_threads`] scoped
/// threads and return the results in input order.
///
/// `f` is called as `f(index, &item)`; the index lets callers thread
/// positional context (seed, scenario id) without capturing it in the
/// item type.
///
/// ```
/// let squares = mcdnn_runtime::parallel_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_threads().min(items.len());
    if workers <= 1 {
        mcdnn_obs::counter_add("runtime.jobs", items.len() as u64);
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Read the enabled flag once: per-worker utilization needs two clock
    // reads per item, which the disabled path must not pay.
    let observe = mcdnn_obs::enabled();
    let sweep_span = mcdnn_obs::span("runtime", "parallel_map");
    mcdnn_obs::counter_add("runtime.jobs", items.len() as u64);
    let cursor = AtomicUsize::new(0);
    // Preallocated slot table: each worker writes result `i` straight
    // into `slots[i]` (disjoint indices, so every lock is uncontended),
    // making the final ordered collect O(n) moves instead of a sort.
    let slots: Vec<Mutex<Option<R>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let started = observe.then(std::time::Instant::now);
                let mut busy = std::time::Duration::ZERO;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = if started.is_some() {
                        let t0 = std::time::Instant::now();
                        let r = f(i, &items[i]);
                        busy += t0.elapsed();
                        r
                    } else {
                        f(i, &items[i])
                    };
                    *slots[i].lock().expect("slot poisoned") = Some(r);
                }
                if let Some(start) = started {
                    // Fraction of the worker's lifetime spent inside
                    // `f` (vs. queue contention + slot writes).
                    let alive = start.elapsed().as_secs_f64();
                    if alive > 0.0 {
                        mcdnn_obs::observe_ms(
                            "runtime.worker.busy_frac",
                            busy.as_secs_f64() / alive,
                        );
                    }
                }
            });
        }
    });
    drop(sweep_span);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("scope joined every worker")
                .expect("cursor visited every index")
        })
        .collect()
}

/// [`parallel_map`] over an owned vector of inputs.
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map(&items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn skewed_work_still_completes() {
        // A few expensive items among many cheap ones exercises the
        // dynamic queue (static chunking would serialize the tail).
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |_, &x| {
            let rounds = if x % 16 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..rounds {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 64);
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn results_match_serial() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let serial: Vec<f64> = items.iter().map(|x| x.sin() * x.cos()).collect();
        let par = parallel_map(&items, |_, x| x.sin() * x.cos());
        assert_eq!(serial, par, "bit-identical to the serial map");
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn owned_variant() {
        let out = parallel_map_owned(vec![1u8, 2, 3], |_, &x| x as u32 + 10);
        assert_eq!(out, vec![11, 12, 13]);
    }
}
