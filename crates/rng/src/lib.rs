//! # mcdnn-rng
//!
//! A tiny, zero-dependency, seedable pseudo-random number generator so
//! the workspace builds hermetically (no registry access). The
//! generator is xoshiro256++ (Blackman & Vigna), seeded by SplitMix64 —
//! the same construction the reference `rand_xoshiro` crate uses — with
//! the handful of sampling helpers the simulators and property tests
//! need: uniform ranges over floats and integers, Bernoulli draws,
//! normal deviates via Box–Muller, and Fisher–Yates shuffles.
//!
//! Determinism is part of the contract: the same seed produces the same
//! stream on every platform, which the discrete-event simulator and the
//! online-adaptation experiments rely on for reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Seed the generator from a single `u64` by running SplitMix64
    /// four times (never yields the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range; supports `a..b` and `a..=b` over
    /// `f64`, `u64`, `u32`, `usize` and `i64`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p ∈ [0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.f64() < p
    }

    /// Standard normal deviate via Box–Muller (one value per call; the
    /// paired deviate is discarded to keep the stream position simple).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be >= 0");
        // Avoid ln(0) by flipping the first uniform into (0, 1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Unbiased uniform integer in `[0, bound)` (Lemire-style rejection
    /// on the widening multiply).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection zone keeps the multiply-shift map exactly uniform.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= zone {
                return (m >> 64) as u64;
            }
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.f64()
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        // The closed endpoint is reachable only up to rounding, which is
        // what the continuous samplers here need.
        a + (b - a) * rng.f64()
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b - a) as u64;
                if span == u64::MAX {
                    return a + rng.next_u64() as $t;
                }
                a + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(u64, usize, u32);

impl SampleRange for std::ops::Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = Rng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&y));
            let z = rng.gen_range(5usize..8);
            assert!((5..8).contains(&z));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = Rng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        let mut rng2 = Rng::seed_from_u64(6);
        assert!((0..100).all(|_| !rng2.gen_bool(0.0)));
        assert!((0..100).all(|_| rng2.gen_bool(1.0)));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements never fixed");
        let p = rng.permutation(10);
        let mut q = p.clone();
        q.sort_unstable();
        assert_eq!(q, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5.0..5.0);
    }
}
