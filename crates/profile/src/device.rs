//! Device compute models (mobile CPU, cloud GPU).

/// Analytic compute model: effective sustained throughput plus a fixed
/// per-layer dispatch overhead.
///
/// `time = flops / throughput + layers × overhead`. The overhead term
/// captures framework dispatch cost and keeps cheap layers (activations,
/// batch-norm) from costing literally nothing, mirroring real profiler
/// traces where every layer has a floor cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Human-readable device name.
    pub name: String,
    /// Effective sustained throughput in FLOP/s.
    pub flops_per_sec: f64,
    /// Fixed overhead per executed layer, in milliseconds.
    pub layer_overhead_ms: f64,
}

impl DeviceModel {
    /// Create a device model.
    pub fn new(name: impl Into<String>, flops_per_sec: f64, layer_overhead_ms: f64) -> Self {
        assert!(flops_per_sec > 0.0, "throughput must be positive");
        assert!(layer_overhead_ms >= 0.0, "overhead cannot be negative");
        DeviceModel {
            name: name.into(),
            flops_per_sec,
            layer_overhead_ms,
        }
    }

    /// The paper's mobile device: Raspberry Pi 4B (quad Cortex-A72).
    ///
    /// Calibrated to ≈2 GFLOP/s effective — PyTorch fp32 inference on
    /// the Pi 4 sustains roughly this, putting a full AlexNet forward
    /// pass at ~700 ms and each Fig. 4 block in the 5–50 ms band.
    pub fn raspberry_pi4() -> Self {
        DeviceModel::new("raspberry_pi4", 2.0e9, 0.6)
    }

    /// The paper's cloud server: i7-8700 + GTX1080, CUDA inference.
    ///
    /// ≈500× the mobile throughput with tiny dispatch overhead (the
    /// GTX1080 peaks near 9 TFLOP/s fp32; ~1 TFLOP/s sustained on small
    /// CNN batches), which is what makes the paper's "cloud time is
    /// negligible" observation (Fig. 4(a)) hold.
    pub fn cloud_gtx1080() -> Self {
        DeviceModel::new("cloud_gtx1080", 1.0e12, 0.02)
    }

    /// Time in milliseconds to execute `flops` spread over `layers`
    /// layers on this device.
    #[inline]
    pub fn time_ms(&self, flops: u64, layers: usize) -> f64 {
        flops as f64 / self.flops_per_sec * 1e3 + layers as f64 * self.layer_overhead_ms
    }
}

/// How the cloud stage is costed.
///
/// The paper measures cloud compute, observes it is dwarfed by
/// communication (Fig. 4(a)), and reduces scheduling to two stages. Both
/// options are kept so the 2-stage reduction can be tested rather than
/// assumed.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudModel {
    /// Cloud compute treated as free (the paper's working assumption).
    Negligible,
    /// Cloud compute billed against a device model.
    Device(DeviceModel),
}

impl CloudModel {
    /// Time in milliseconds for the cloud to run `flops` over `layers`.
    #[inline]
    pub fn time_ms(&self, flops: u64, layers: usize) -> f64 {
        match self {
            CloudModel::Negligible => 0.0,
            CloudModel::Device(d) => d.time_ms(flops, layers),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_linear_in_flops() {
        let d = DeviceModel::new("d", 1e9, 0.0);
        assert!((d.time_ms(1_000_000, 0) - 1.0).abs() < 1e-12);
        assert!((d.time_ms(2_000_000, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_accrues_per_layer() {
        let d = DeviceModel::new("d", 1e9, 0.5);
        assert!((d.time_ms(0, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pi4_alexnet_magnitude() {
        // ~1.43 GFLOPs AlexNet over 21 layers: several hundred ms.
        let d = DeviceModel::raspberry_pi4();
        let t = d.time_ms(1_430_000_000, 21);
        assert!((500.0..1000.0).contains(&t), "AlexNet-on-Pi = {t} ms");
    }

    #[test]
    fn cloud_is_orders_of_magnitude_faster() {
        let m = DeviceModel::raspberry_pi4();
        let c = DeviceModel::cloud_gtx1080();
        let flops = 1_430_000_000;
        assert!(m.time_ms(flops, 21) / c.time_ms(flops, 21) > 50.0);
    }

    #[test]
    fn negligible_cloud_is_free() {
        assert_eq!(CloudModel::Negligible.time_ms(u64::MAX, 1000), 0.0);
    }

    #[test]
    fn device_cloud_bills_time() {
        let c = CloudModel::Device(DeviceModel::new("c", 1e9, 0.0));
        assert!((c.time_ms(5_000_000, 0) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn zero_throughput_rejected() {
        DeviceModel::new("bad", 0.0, 0.0);
    }
}
