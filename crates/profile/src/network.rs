//! Uplink communication model.
//!
//! The paper models communication time as `t = w0 + w1 · r` where
//! `r = s/b` is the message-size/bandwidth ratio and `w0` is the channel
//! setup latency (§6.1). With `w1 ≈ 1` that is exactly
//! `setup + bytes/bandwidth`; [`NetworkModel`] implements it directly
//! and [`crate::regression`] recovers `w0, w1` from noisy measurements
//! the way the paper's profiler does.

/// Uplink model: fixed setup latency plus bandwidth-limited transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Uplink bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Per-transfer channel setup latency `w0`, in milliseconds.
    pub setup_ms: f64,
}

impl NetworkModel {
    /// Create a network model.
    pub fn new(bandwidth_mbps: f64, setup_ms: f64) -> Self {
        assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
        assert!(setup_ms >= 0.0, "setup latency cannot be negative");
        NetworkModel {
            bandwidth_mbps,
            setup_ms,
        }
    }

    /// 3G at 1.1 Mbps — the paper's value (from Hu et al. (DADS, INFOCOM'19)).
    pub fn three_g() -> Self {
        NetworkModel::new(1.1, 80.0)
    }

    /// 4G/LTE at 5.85 Mbps — the paper's value.
    pub fn four_g() -> Self {
        NetworkModel::new(5.85, 40.0)
    }

    /// Wi-Fi at 18.88 Mbps — the paper's value.
    pub fn wifi() -> Self {
        NetworkModel::new(18.88, 10.0)
    }

    /// Same bandwidth, different setup latency.
    pub fn with_setup_ms(mut self, setup_ms: f64) -> Self {
        assert!(setup_ms >= 0.0);
        self.setup_ms = setup_ms;
        self
    }

    /// Time in milliseconds to upload `bytes`. Zero bytes means no
    /// transfer at all (local-only jobs never open a channel).
    #[inline]
    pub fn upload_ms(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.setup_ms + bytes as f64 * 8.0 / (self.bandwidth_mbps * 1e3)
    }

    /// The regression feature `r = s/b` of the paper, in ms units
    /// (`bits / (Mbps·1e3)`).
    #[inline]
    pub fn ratio(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 / (self.bandwidth_mbps * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_presets() {
        assert_eq!(NetworkModel::three_g().bandwidth_mbps, 1.1);
        assert_eq!(NetworkModel::four_g().bandwidth_mbps, 5.85);
        assert_eq!(NetworkModel::wifi().bandwidth_mbps, 18.88);
    }

    #[test]
    fn upload_time_formula() {
        let n = NetworkModel::new(8.0, 5.0); // 8 Mbps -> 1 KB/ms payload
        // 1 MB = 8e6 bits over 8e3 bits/ms = 1000 ms + 5 setup.
        assert!((n.upload_ms(1_000_000) - 1005.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(NetworkModel::wifi().upload_ms(0), 0.0);
    }

    #[test]
    fn paper_co_at_3g_exceeds_4_seconds() {
        // The paper: "it costs more than 4,000 ms to upload the input
        // tensor" on 3G for all DNNs. The 224² RGB f32 tensor:
        let input_bytes = 3 * 224 * 224 * 4;
        assert!(NetworkModel::three_g().upload_ms(input_bytes) > 4000.0);
    }

    #[test]
    fn monotone_in_bytes_and_bandwidth() {
        let n = NetworkModel::wifi();
        assert!(n.upload_ms(2000) > n.upload_ms(1000));
        let fast = NetworkModel::new(40.0, 10.0);
        assert!(fast.upload_ms(1_000_000) < n.upload_ms(1_000_000));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        NetworkModel::new(0.0, 0.0);
    }
}
