//! Mobile-side energy model.
//!
//! Battery, not just latency, decides offloading policy on mobile
//! devices (a standard extension of the paper's framework). The mobile
//! device draws `compute_watts` while running DNN layers, `tx_watts`
//! while the radio transmits, and `idle_watts` otherwise — so a cut
//! trades compute energy against radio energy exactly as it trades
//! `f` against `g` in time.
//!
//! Units: power in watts, durations in ms, energy in millijoules
//! (`1 W × 1 ms = 1 mJ`).

/// Mobile device power states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power while the CPU executes DNN layers, W.
    pub compute_watts: f64,
    /// Power while the radio uploads, W (on top of idle).
    pub tx_watts: f64,
    /// Baseline power while waiting, W.
    pub idle_watts: f64,
}

impl EnergyModel {
    /// Create a model; all powers must be non-negative and active
    /// powers at least the idle power.
    pub fn new(compute_watts: f64, tx_watts: f64, idle_watts: f64) -> Self {
        assert!(idle_watts >= 0.0, "idle power cannot be negative");
        assert!(
            compute_watts >= idle_watts,
            "compute power below idle makes no sense"
        );
        assert!(tx_watts >= idle_watts, "tx power below idle makes no sense");
        EnergyModel {
            compute_watts,
            tx_watts,
            idle_watts,
        }
    }

    /// Raspberry Pi 4 over Wi-Fi: ~6.4 W under full CPU load, ~3.8 W
    /// transmitting, ~2.7 W idle (published bench measurements).
    pub fn raspberry_pi4_wifi() -> Self {
        EnergyModel::new(6.4, 3.8, 2.7)
    }

    /// Active energy of one job's mobile stages: compute for `f_ms`,
    /// transmit for `g_ms` (idle-baseline included in both states).
    #[inline]
    pub fn job_active_mj(&self, f_ms: f64, g_ms: f64) -> f64 {
        self.compute_watts * f_ms + self.tx_watts * g_ms
    }

    /// Total device energy over a batch: active compute + active tx +
    /// idle for the remainder of the makespan. `busy_compute_ms` and
    /// `busy_tx_ms` may overlap (CPU computes while radio transmits),
    /// which is why they are billed as increments over idle.
    pub fn batch_mj(&self, busy_compute_ms: f64, busy_tx_ms: f64, makespan_ms: f64) -> f64 {
        assert!(busy_compute_ms <= makespan_ms + 1e-9);
        assert!(busy_tx_ms <= makespan_ms + 1e-9);
        self.idle_watts * makespan_ms
            + (self.compute_watts - self.idle_watts) * busy_compute_ms
            + (self.tx_watts - self.idle_watts) * busy_tx_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_energy_formula() {
        let e = EnergyModel::new(5.0, 3.0, 1.0);
        assert!((e.job_active_mj(100.0, 50.0) - (500.0 + 150.0)).abs() < 1e-12);
    }

    #[test]
    fn batch_energy_includes_idle() {
        let e = EnergyModel::new(5.0, 3.0, 1.0);
        // 100 ms makespan, 40 ms computing, 30 ms transmitting.
        let mj = e.batch_mj(40.0, 30.0, 100.0);
        assert!((mj - (100.0 + 4.0 * 40.0 + 2.0 * 30.0)).abs() < 1e-12);
    }

    #[test]
    fn offloading_saves_energy_when_radio_is_cheap() {
        let e = EnergyModel::raspberry_pi4_wifi();
        // 700 ms of local compute vs 100 ms compute + 80 ms upload.
        let local = e.job_active_mj(700.0, 0.0);
        let offload = e.job_active_mj(100.0, 80.0);
        assert!(offload < local);
    }

    #[test]
    #[should_panic(expected = "below idle")]
    fn implausible_powers_rejected() {
        EnergyModel::new(1.0, 3.0, 2.0);
    }
}
