//! The `(f, g)` cost profile of a line-structure DNN under a concrete
//! device + network configuration — the sole input to the paper's
//! partition and scheduling algorithms.

use mcdnn_graph::LineDnn;

use crate::device::{CloudModel, DeviceModel};
use crate::network::NetworkModel;

/// Why a [`CostProfile`] could not be constructed.
///
/// Returned by [`CostProfile::try_new`]; the panicking
/// [`CostProfile::from_vectors`] wraps it and panics with its
/// [`Display`](std::fmt::Display) message, so both surfaces report the
/// same diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// No cut points at all (`f` was empty).
    Empty,
    /// `f` and `g` vectors disagree in length.
    LengthMismatch {
        /// Length of `f`.
        f: usize,
        /// Length of `g`.
        g: usize,
    },
    /// `cloud` vector disagrees in length with `f`.
    CloudLengthMismatch {
        /// Length of `f`.
        f: usize,
        /// Length of `cloud`.
        cloud: usize,
    },
    /// `f(0)` must be zero: cut 0 runs nothing on the mobile device.
    NonzeroF0 {
        /// The offending value.
        value: f64,
    },
    /// `g(k)` must be zero: the local-only cut uploads nothing.
    NonzeroTailG {
        /// The offending value.
        value: f64,
    },
    /// A stage time is NaN, infinite, or negative.
    NonFinite {
        /// Which vector (`"f"`, `"g"` or `"cloud"`).
        which: &'static str,
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Empty => write!(fmt, "profile needs at least one cut"),
            ProfileError::LengthMismatch { f, g } => {
                write!(fmt, "f and g length mismatch ({f} vs {g})")
            }
            ProfileError::CloudLengthMismatch { f, cloud } => {
                write!(fmt, "cloud length mismatch ({f} vs {cloud})")
            }
            ProfileError::NonzeroF0 { value } => {
                write!(fmt, "f(0) must be 0 (nothing runs on mobile), got {value}")
            }
            ProfileError::NonzeroTailG { value } => {
                write!(fmt, "g(k) must be 0 (local-only uploads nothing), got {value}")
            }
            ProfileError::NonFinite { which, index, value } => write!(
                fmt,
                "stage times must be finite and >= 0: {which}[{index}] = {value}"
            ),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Stage durations for every cut point `l ∈ 0..=k` of one DNN:
///
/// * `f_ms[l]` — mobile computation time of layers `1..=l` (the paper's
///   `f(l)`); `f_ms[0] = 0`.
/// * `g_ms[l]` — upload time of the cut tensor (the paper's `g(l)`);
///   `g_ms[0]` uploads the raw input, `g_ms[k] = 0` (local-only).
/// * `cloud_ms[l]` — cloud computation time of layers `l+1..=k`;
///   all-zero under [`CloudModel::Negligible`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    name: String,
    f_ms: Vec<f64>,
    g_ms: Vec<f64>,
    cloud_ms: Vec<f64>,
}

impl CostProfile {
    /// Evaluate the cost profile of `line` on the given platform.
    pub fn evaluate(
        line: &LineDnn,
        mobile: &DeviceModel,
        network: &NetworkModel,
        cloud: &CloudModel,
    ) -> Self {
        let k = line.k();
        let mut f_ms = Vec::with_capacity(k + 1);
        let mut g_ms = Vec::with_capacity(k + 1);
        let mut cloud_ms = Vec::with_capacity(k + 1);
        for cut in 0..=k {
            f_ms.push(mobile.time_ms(line.mobile_flops(cut), cut));
            g_ms.push(network.upload_ms(line.offload_bytes(cut)));
            cloud_ms.push(cloud.time_ms(line.cloud_flops(cut), k - cut));
        }
        CostProfile {
            name: line.name().to_string(),
            f_ms,
            g_ms,
            cloud_ms,
        }
    }

    /// Build directly from stage vectors (synthetic workloads, tests).
    ///
    /// Panics unless `f[0] == 0`, `g[k] == 0`, lengths match, and all
    /// entries are finite and non-negative. Thin wrapper over
    /// [`CostProfile::try_new`] — prefer that in code that can report
    /// errors instead of aborting.
    pub fn from_vectors(
        name: impl Into<String>,
        f_ms: Vec<f64>,
        g_ms: Vec<f64>,
        cloud_ms: Option<Vec<f64>>,
    ) -> Self {
        Self::try_new(name, f_ms, g_ms, cloud_ms).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor from stage vectors.
    ///
    /// Validates the shape invariants every planner relies on and
    /// reports the first violation as a typed [`ProfileError`]:
    /// non-empty vectors of equal length, `f[0] == 0`, `g[k] == 0`, and
    /// every entry finite and non-negative. A missing `cloud_ms`
    /// defaults to all-zero (the paper's negligible-cloud regime).
    ///
    /// Monotonicity of `f`/`g` is deliberately *not* required here —
    /// non-clustered profiles are legal inputs to the uniform sweep;
    /// strategies that do need it check via [`CostProfile::f_is_monotone`]
    /// at planning time.
    pub fn try_new(
        name: impl Into<String>,
        f_ms: Vec<f64>,
        g_ms: Vec<f64>,
        cloud_ms: Option<Vec<f64>>,
    ) -> Result<Self, ProfileError> {
        if f_ms.is_empty() {
            return Err(ProfileError::Empty);
        }
        if f_ms.len() != g_ms.len() {
            return Err(ProfileError::LengthMismatch {
                f: f_ms.len(),
                g: g_ms.len(),
            });
        }
        let cloud_ms = cloud_ms.unwrap_or_else(|| vec![0.0; f_ms.len()]);
        if f_ms.len() != cloud_ms.len() {
            return Err(ProfileError::CloudLengthMismatch {
                f: f_ms.len(),
                cloud: cloud_ms.len(),
            });
        }
        if f_ms[0] != 0.0 {
            return Err(ProfileError::NonzeroF0 { value: f_ms[0] });
        }
        let tail_g = *g_ms.last().unwrap();
        if tail_g != 0.0 {
            return Err(ProfileError::NonzeroTailG { value: tail_g });
        }
        for (which, vec) in [("f", &f_ms), ("g", &g_ms), ("cloud", &cloud_ms)] {
            if let Some(index) = vec.iter().position(|v| !v.is_finite() || *v < 0.0) {
                return Err(ProfileError::NonFinite {
                    which,
                    index,
                    value: vec[index],
                });
            }
        }
        Ok(CostProfile {
            name: name.into(),
            f_ms,
            g_ms,
            cloud_ms,
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers `k` (cuts range over `0..=k`).
    pub fn k(&self) -> usize {
        self.f_ms.len() - 1
    }

    /// Mobile computation time for cut `l`.
    #[inline]
    pub fn f(&self, cut: usize) -> f64 {
        self.f_ms[cut]
    }

    /// Upload time for cut `l`.
    #[inline]
    pub fn g(&self, cut: usize) -> f64 {
        self.g_ms[cut]
    }

    /// Cloud computation time for cut `l`.
    #[inline]
    pub fn cloud(&self, cut: usize) -> f64 {
        self.cloud_ms[cut]
    }

    /// `f` vector (length `k+1`).
    pub fn f_all(&self) -> &[f64] {
        &self.f_ms
    }

    /// `g` vector (length `k+1`).
    pub fn g_all(&self) -> &[f64] {
        &self.g_ms
    }

    /// Cloud vector (length `k+1`).
    pub fn cloud_all(&self) -> &[f64] {
        &self.cloud_ms
    }

    /// True when `f` is non-decreasing — guaranteed by construction for
    /// evaluated profiles, an assumption the theory needs for synthetic
    /// ones.
    pub fn f_is_monotone(&self) -> bool {
        self.f_ms.windows(2).all(|w| w[1] >= w[0] - 1e-12)
    }

    /// True when `g` is non-increasing over interior cuts `0..k`
    /// (the clustered-DNN property; `g(k) = 0` trivially continues it).
    pub fn g_is_monotone(&self) -> bool {
        self.g_ms.windows(2).all(|w| w[1] <= w[0] + 1e-12)
    }

    /// The paper's `l*`: the left-most cut with `f(l) ≥ g(l)`.
    ///
    /// Always exists because `f(k) ≥ 0 = g(k)`. Computed by linear scan;
    /// the partition crate provides the `O(log k)` binary search (Alg. 2)
    /// and tests it against this reference.
    pub fn l_star_linear(&self) -> usize {
        (0..=self.k())
            .find(|&l| self.f(l) >= self.g(l))
            .expect("f(k) >= 0 = g(k) guarantees existence")
    }

    /// Version stamp of this profile: generation 0 (a `CostProfile` is
    /// an immutable snapshot at one fixed bandwidth — re-estimation
    /// builds a *new* profile) plus an FNV-1a digest over the stage
    /// vectors. Two profiles with equal digests carry bit-identical
    /// `(f, g, cloud)` content; the name is deliberately excluded so
    /// renamed but identical workloads share a version.
    pub fn version(&self) -> crate::adapt::ProfileVersion {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let fold = |h: u64, v: u64| (h ^ v).wrapping_mul(PRIME);
        let mut h = fold(OFFSET, self.f_ms.len() as u64);
        for vec in [&self.f_ms, &self.g_ms, &self.cloud_ms] {
            for &v in vec.iter() {
                h = fold(h, v.to_bits());
            }
        }
        crate::adapt::ProfileVersion::base(h)
    }

    /// Local-only latency: run everything on the mobile device.
    pub fn local_only_ms(&self) -> f64 {
        self.f(self.k())
    }

    /// Cloud-only latency for one isolated job: upload the input and run
    /// everything remotely.
    pub fn cloud_only_ms(&self) -> f64 {
        self.g(0) + self.cloud(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdnn_graph::{LineDnn, LineLayer};

    fn line() -> LineDnn {
        LineDnn::from_parts(
            "t",
            1_000_000,
            vec![
                LineLayer {
                    name: "a".into(),
                    flops: 2_000_000,
                    out_bytes: 500_000,
                    nodes: vec![],
                },
                LineLayer {
                    name: "b".into(),
                    flops: 2_000_000,
                    out_bytes: 100_000,
                    nodes: vec![],
                },
            ],
        )
    }

    #[test]
    fn evaluate_formulas() {
        let mobile = DeviceModel::new("m", 1e9, 0.0);
        let net = NetworkModel::new(8.0, 0.0); // 1 byte = 1 microsecond
        let p = CostProfile::evaluate(&line(), &mobile, &net, &CloudModel::Negligible);
        assert_eq!(p.k(), 2);
        assert_eq!(p.f_all(), &[0.0, 2.0, 4.0]);
        assert_eq!(p.g_all(), &[1000.0, 500.0, 0.0]);
        assert_eq!(p.cloud_all(), &[0.0; 3]);
    }

    #[test]
    fn cloud_model_fills_third_stage() {
        let mobile = DeviceModel::new("m", 1e9, 0.0);
        let net = NetworkModel::new(8.0, 0.0);
        let cloud = CloudModel::Device(DeviceModel::new("c", 2e9, 0.0));
        let p = CostProfile::evaluate(&line(), &mobile, &net, &cloud);
        assert_eq!(p.cloud_all(), &[2.0, 1.0, 0.0]);
        assert!((p.cloud_only_ms() - 1002.0).abs() < 1e-9);
    }

    #[test]
    fn monotonicity_detected() {
        let p = CostProfile::from_vectors(
            "s",
            vec![0.0, 1.0, 2.0],
            vec![10.0, 5.0, 0.0],
            None,
        );
        assert!(p.f_is_monotone());
        assert!(p.g_is_monotone());
        let bumpy = CostProfile::from_vectors(
            "b",
            vec![0.0, 1.0, 2.0],
            vec![10.0, 12.0, 0.0],
            None,
        );
        assert!(!bumpy.g_is_monotone());
    }

    #[test]
    fn l_star_linear_scan() {
        let p = CostProfile::from_vectors(
            "s",
            vec![0.0, 2.0, 4.0, 7.0, 9.0],
            vec![20.0, 8.0, 5.0, 2.0, 0.0],
            None,
        );
        // f: 0,2,4,7,9 vs g: 20,8,5,2,0 -> first f>=g at l=3 (7>=2).
        assert_eq!(p.l_star_linear(), 3);
    }

    #[test]
    fn l_star_can_be_zero() {
        // Blazing network: offloading immediately is already balanced.
        let p = CostProfile::from_vectors("s", vec![0.0, 5.0], vec![0.0, 0.0], None);
        assert_eq!(p.l_star_linear(), 0);
    }

    #[test]
    fn extremes() {
        let p = CostProfile::from_vectors(
            "s",
            vec![0.0, 3.0, 8.0],
            vec![10.0, 4.0, 0.0],
            None,
        );
        assert_eq!(p.local_only_ms(), 8.0);
        assert_eq!(p.cloud_only_ms(), 10.0);
    }

    #[test]
    #[should_panic(expected = "f(0) must be 0")]
    fn nonzero_f0_rejected() {
        CostProfile::from_vectors("s", vec![1.0, 2.0], vec![5.0, 0.0], None);
    }

    #[test]
    #[should_panic(expected = "g(k) must be 0")]
    fn nonzero_gk_rejected() {
        CostProfile::from_vectors("s", vec![0.0, 2.0], vec![5.0, 1.0], None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        CostProfile::from_vectors("s", vec![0.0, f64::NAN], vec![5.0, 0.0], None);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            CostProfile::try_new("s", vec![], vec![], None).unwrap_err(),
            ProfileError::Empty
        );
        assert_eq!(
            CostProfile::try_new("s", vec![0.0, 1.0], vec![0.0], None).unwrap_err(),
            ProfileError::LengthMismatch { f: 2, g: 1 }
        );
        assert_eq!(
            CostProfile::try_new("s", vec![0.0, 1.0], vec![5.0, 0.0], Some(vec![0.0]))
                .unwrap_err(),
            ProfileError::CloudLengthMismatch { f: 2, cloud: 1 }
        );
        assert_eq!(
            CostProfile::try_new("s", vec![1.0, 2.0], vec![5.0, 0.0], None).unwrap_err(),
            ProfileError::NonzeroF0 { value: 1.0 }
        );
        assert_eq!(
            CostProfile::try_new("s", vec![0.0, 2.0], vec![5.0, 1.0], None).unwrap_err(),
            ProfileError::NonzeroTailG { value: 1.0 }
        );
        match CostProfile::try_new("s", vec![0.0, -3.0], vec![5.0, 0.0], None) {
            Err(ProfileError::NonFinite { which: "f", index: 1, .. }) => {}
            other => panic!("expected NonFinite for f[1], got {other:?}"),
        }
        // Display messages keep the historical panic substrings.
        assert!(ProfileError::Empty.to_string().contains("at least one cut"));
        assert!(ProfileError::NonzeroF0 { value: 1.0 }
            .to_string()
            .contains("f(0) must be 0"));
    }

    #[test]
    fn version_digests_content_not_name() {
        let a = CostProfile::from_vectors("a", vec![0.0, 2.0], vec![5.0, 0.0], None);
        let b = CostProfile::from_vectors("b", vec![0.0, 2.0], vec![5.0, 0.0], None);
        let c = CostProfile::from_vectors("a", vec![0.0, 3.0], vec![5.0, 0.0], None);
        assert_eq!(a.version(), b.version(), "name excluded from the digest");
        assert_ne!(a.version(), c.version(), "content folded into the digest");
        assert_eq!(a.version().generation, 0);
    }

    #[test]
    fn try_new_accepts_valid_profiles() {
        let p = CostProfile::try_new("ok", vec![0.0, 2.0], vec![5.0, 0.0], None).unwrap();
        assert_eq!(p.k(), 1);
        assert_eq!(p.cloud_all(), &[0.0, 0.0]);
    }
}
