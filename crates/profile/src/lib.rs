//! # mcdnn-profile
//!
//! Cost models that turn a DNN's structure into the paper's two stage
//! duration functions: `f(l)` — mobile computation time up to cut `l` —
//! and `g(l)` — time to upload the cut tensor. The paper estimates these
//! with a pre-built lookup table (local compute is stable) and a linear
//! regression over message-size/bandwidth ratio (communication); both
//! are reproduced here (§6.1).
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The paper profiles a physical Raspberry Pi 4 and a GTX1080 PC. We
//! replace the hardware with an analytic model: effective sustained
//! FLOP/s plus a fixed per-layer overhead, calibrated so AlexNet's
//! mobile times land in the magnitude band of the paper's Fig. 4 and so
//! that cloud-only at 3G costs > 4 s (the paper reports exactly that).
//! Everything downstream consumes only the resulting `(f, g)` vectors,
//! whose *shape* — increasing ≈linear `f`, decreasing ≈convex `g` — is
//! inherited from the true layer FLOPs and tensor sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod cost;
pub mod device;
pub mod energy;
pub mod lookup;
pub mod measure;
pub mod network;
pub mod regression;

pub use adapt::{AdaptConfig, Ewma, ProfileEstimator, ProfileVersion, WindowRegression};
pub use cost::{CostProfile, ProfileError};
pub use device::{CloudModel, DeviceModel};
pub use energy::EnergyModel;
pub use lookup::LookupTable;
pub use network::NetworkModel;
pub use regression::LinearRegression;
