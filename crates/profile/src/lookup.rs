//! The scheduler's pre-built lookup table for local computation times.
//!
//! The paper: "To reduce the estimation overhead, we build a lookup
//! table for computation time considering the local computation time
//! stable. … The lookup table is pre-built and … loaded into memory
//! when starting." (§6.1). [`LookupTable`] is that artifact: it maps
//! `(model, cut)` to the averaged measured `f(l)`, decoupling the
//! scheduler's decision latency (Fig. 12(d)) from profiling cost.

use std::collections::HashMap;

/// Per-model table of mobile computation times per cut.
#[derive(Debug, Clone, Default)]
pub struct LookupTable {
    entries: HashMap<String, Vec<f64>>,
}

impl LookupTable {
    /// Empty table.
    pub fn new() -> Self {
        LookupTable::default()
    }

    /// Insert (or replace) the `f` vector for a model. `f_ms[l]` is the
    /// mobile time of cut `l`; length must be `k + 1` with `f_ms[0] = 0`.
    pub fn insert(&mut self, model: impl Into<String>, f_ms: Vec<f64>) {
        assert!(!f_ms.is_empty() && f_ms[0] == 0.0, "f vector must start at 0");
        self.entries.insert(model.into(), f_ms);
    }

    /// Build an entry by averaging repeated measurement runs (each run a
    /// full `f` vector, e.g. from [`crate::measure::measure_f`]).
    pub fn insert_averaged(&mut self, model: impl Into<String>, runs: &[Vec<f64>]) {
        assert!(!runs.is_empty(), "need at least one run");
        let len = runs[0].len();
        assert!(runs.iter().all(|r| r.len() == len), "run length mismatch");
        let mut avg = vec![0.0; len];
        for run in runs {
            for (a, v) in avg.iter_mut().zip(run) {
                *a += v;
            }
        }
        for a in &mut avg {
            *a /= runs.len() as f64;
        }
        avg[0] = 0.0; // measurement noise cannot create work at cut 0
        self.insert(model, avg);
    }

    /// Look up the `f` vector of a model.
    pub fn f_all(&self, model: &str) -> Option<&[f64]> {
        self.entries.get(model).map(Vec::as_slice)
    }

    /// Look up `f(l)` for one cut.
    pub fn f(&self, model: &str, cut: usize) -> Option<f64> {
        self.entries.get(model).and_then(|v| v.get(cut)).copied()
    }

    /// Number of models stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize to a simple CSV (`model,cut,f_ms`) for artifacts.
    pub fn to_csv(&self) -> String {
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        let mut out = String::from("model,cut,f_ms\n");
        for k in keys {
            for (cut, v) in self.entries[k].iter().enumerate() {
                out.push_str(&format!("{k},{cut},{v:.6}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut t = LookupTable::new();
        t.insert("alexnet", vec![0.0, 10.0, 25.0]);
        assert_eq!(t.f("alexnet", 2), Some(25.0));
        assert_eq!(t.f("alexnet", 3), None);
        assert_eq!(t.f("vgg", 0), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn averaging_runs() {
        let mut t = LookupTable::new();
        t.insert_averaged(
            "m",
            &[vec![0.0, 10.0, 20.0], vec![0.0, 14.0, 22.0]],
        );
        assert_eq!(t.f_all("m").unwrap(), &[0.0, 12.0, 21.0]);
    }

    #[test]
    #[should_panic(expected = "run length mismatch")]
    fn mismatched_runs_rejected() {
        let mut t = LookupTable::new();
        t.insert_averaged("m", &[vec![0.0, 1.0], vec![0.0, 1.0, 2.0]]);
    }

    #[test]
    fn csv_round_shape() {
        let mut t = LookupTable::new();
        t.insert("b", vec![0.0, 2.0]);
        t.insert("a", vec![0.0, 1.0]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "model,cut,f_ms");
        assert!(lines[1].starts_with("a,0,")); // sorted by model
        assert_eq!(lines.len(), 1 + 4);
    }
}
