//! Online profile learning: drift-adaptive estimation of the device,
//! cloud, and link parameters a [`crate::CostProfile`] is built from.
//!
//! The paper pins its cost model once — a lookup table for `f`, a
//! linear regression `t = w0 + w1·r` for `g` (§6.1) — and every plan
//! downstream trusts those constants forever. Real fleets drift:
//! thermal throttling slows the device, congestion bends the link.
//! This module is the sensor layer that closes the
//! observe→estimate→replan loop:
//!
//! * [`Ewma`] — a debiased exponentially-weighted moving average
//!   tracking one multiplicative scale (realized / base).
//! * [`WindowRegression`] — a fixed-capacity sliding window of
//!   `(ratio, upload_ms)` samples refit by [`crate::LinearRegression`],
//!   re-learning the paper's `(w0, w1)` online.
//! * [`ProfileEstimator`] — one per tenant: per-layer device scales, a
//!   cloud scale, and the upload regression, with **confidence gating**
//!   — estimates accumulate freely, but a commit (and hence a plan
//!   invalidation) only happens once `min_obs` observations have
//!   arrived *and* some committed parameter would move by at least the
//!   relative `gate`. Between commits the serving path is read-only
//!   and allocation-free.
//! * [`ProfileVersion`] — the monotone (generation, content digest)
//!   pair that keys recompiled frontiers in the plan cache so one
//!   tenant's commit never touches another tenant's cached plans.
//!
//! Everything here is deterministic in the observation stream: no
//! clocks, no RNG — two estimators fed the same samples in the same
//! order are bit-identical, whatever thread they live on.

use crate::regression::LinearRegression;

/// FNV-1a fold, matching the digest convention used across the repo.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Monotone version stamp for a (re-estimated) profile: a generation
/// counter that only moves forward plus an FNV-1a digest of the
/// committed parameter values. Two profiles with equal versions carry
/// bit-identical cost vectors; a commit bumps the generation so cache
/// keys derived from the version can never alias a stale frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProfileVersion {
    /// Commit counter — 0 for the factory-calibrated base profile.
    pub generation: u64,
    /// FNV-1a digest of the committed parameters (or profile content).
    pub digest: u64,
}

impl ProfileVersion {
    /// Version of an untouched base profile with the given content digest.
    pub fn base(digest: u64) -> Self {
        ProfileVersion { generation: 0, digest }
    }
}

/// Debiased exponentially-weighted moving average.
///
/// The classic EWMA `s ← (1−α)s + αx` started at `s = 0` is biased low
/// until ~`1/α` samples have arrived. Tracking the total weight
/// `w ← (1−α)w + α` alongside and reporting `s / w` removes the bias
/// exactly (Kingma & Ba's Adam uses the same correction), so the
/// estimator is trustworthy from the very first observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    s: f64,
    w: f64,
    n: u64,
}

impl Ewma {
    /// New tracker with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            s: 0.0,
            w: 0.0,
            n: 0,
        }
    }

    /// Fold one observation in. Non-finite samples are ignored — a
    /// sensor glitch must not poison the scale estimate.
    #[inline]
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.s = (1.0 - self.alpha) * self.s + self.alpha * x;
        self.w = (1.0 - self.alpha) * self.w + self.alpha;
        self.n += 1;
    }

    /// Debiased estimate, `None` before the first observation.
    #[inline]
    pub fn value(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.s / self.w)
        }
    }

    /// Number of observations folded in.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Fixed-capacity sliding window of `(x, y)` samples refit on demand by
/// ordinary least squares. The buffer is allocated once at
/// construction; [`WindowRegression::push`] overwrites the oldest
/// sample in place, so the steady-state observe path never allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRegression {
    buf: Vec<(f64, f64)>,
    cap: usize,
    next: usize,
    total: u64,
}

impl WindowRegression {
    /// New window holding at most `cap` samples (`cap >= 2`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(2);
        WindowRegression {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Record one sample, evicting the oldest once the window is full.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        if !(x.is_finite() && y.is_finite()) {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push((x, y));
        } else {
            self.buf[self.next] = (x, y);
        }
        self.next = (self.next + 1) % self.cap;
        self.total += 1;
    }

    /// Samples currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before any sample has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total samples ever pushed (including evicted ones).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Least-squares fit over the current window. OLS is permutation
    /// invariant, so the physical ring order is fit directly — no
    /// reordering, no allocation. `None` while the design is degenerate.
    pub fn fit(&self) -> Option<LinearRegression> {
        LinearRegression::fit(&self.buf)
    }
}

/// Knobs for the online estimator and its commit gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// EWMA smoothing factor for the device and cloud scale trackers.
    pub alpha: f64,
    /// Relative movement a committed parameter must show before a
    /// commit (and the frontier recompile it triggers) is allowed.
    /// `0.05` means "ignore drift under 5%".
    pub gate: f64,
    /// Minimum observations before the first commit may happen.
    pub min_obs: u64,
    /// Sliding-window capacity for the upload `(w0, w1)` regression.
    pub window: usize,
    /// Commit cadence: the gate is only consulted every this many
    /// bursts, a deterministic boundary so pooled and serial runs see
    /// identical commit points.
    pub commit_every: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            alpha: 0.2,
            gate: 0.05,
            min_obs: 8,
            window: 64,
            commit_every: 16,
        }
    }
}

/// One tenant's online view of its device, cloud, and link: EWMA scale
/// trackers per layer plus the sliding-window upload regression, and
/// the last *committed* snapshot of each. The committed snapshot is
/// what plans are built from; it only moves at an explicit
/// [`ProfileEstimator::commit`] that passes the confidence gate.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEstimator {
    cfg: AdaptConfig,
    /// Per-layer device scale trackers, index 0..=k (index 0 is the
    /// empty prefix and stays at scale 1). Tracker `i` holds only
    /// *direct* evidence — realized prefixes that ended exactly at
    /// layer `i`.
    device: Vec<Ewma>,
    /// Pooled device evidence across every observed cut: the O(1)
    /// fallback for layers the ladder has not visited directly.
    device_all: Ewma,
    cloud: Ewma,
    upload: WindowRegression,
    /// Committed per-layer device scales (multiplier on base `f`).
    committed_device: Vec<f64>,
    committed_cloud: f64,
    /// Committed upload intercept (the re-learned `w0`, in ms).
    committed_w0: f64,
    /// Committed upload slope scale (re-learned `w1`; base is 1).
    committed_w1: f64,
    base_setup_ms: f64,
    observations: u64,
    commits: u64,
    /// Set the moment any sample lands `gate / 2` (relative) away from
    /// its committed value, cleared on commit. While false the full
    /// gate scan is provably redundant — a debiased EWMA is a convex
    /// combination of its samples, so if every sample since the last
    /// commit sits within `gate / 2` of the committed value the
    /// smoothed estimate cannot be `gate` away — which keeps the
    /// boundary check O(1) on the undisturbed serving path.
    suspect: bool,
}

impl ProfileEstimator {
    /// New estimator for a `k`-layer profile whose base network model
    /// has intercept `base_setup_ms`. All committed scales start at 1
    /// (trust the factory calibration until told otherwise).
    pub fn new(k: usize, base_setup_ms: f64, cfg: AdaptConfig) -> Self {
        ProfileEstimator {
            cfg,
            device: vec![Ewma::new(cfg.alpha); k + 1],
            device_all: Ewma::new(cfg.alpha),
            cloud: Ewma::new(cfg.alpha),
            upload: WindowRegression::new(cfg.window),
            committed_device: vec![1.0; k + 1],
            committed_cloud: 1.0,
            committed_w0: base_setup_ms,
            committed_w1: 1.0,
            base_setup_ms,
            observations: 0,
            commits: 0,
            suspect: false,
        }
    }

    /// The config this estimator runs under.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// Record a realized mobile stage: the prefix up to `cut` ran at
    /// `ratio` = realized / base. The evidence lands in two O(1)
    /// places: the pooled tracker (shared by every layer as a
    /// fallback, exact under the multiplicative drift model) and the
    /// direct tracker for `cut` itself, which dominates its own layer
    /// under heterogeneous drift. Keeping the observe path O(1) in
    /// the layer count is what holds the zero-drift serving overhead
    /// near zero.
    #[inline]
    pub fn observe_device(&mut self, cut: usize, ratio: f64) {
        self.device_all.observe(ratio);
        let idx = cut.min(self.device.len().saturating_sub(1));
        if idx > 0 {
            self.device[idx].observe(ratio);
            self.suspect |= self.deviates(ratio, self.committed_device[idx]);
        }
        self.observations += 1;
    }

    /// Record a realized cloud stage at `ratio` = realized / base.
    #[inline]
    pub fn observe_cloud(&mut self, ratio: f64) {
        self.cloud.observe(ratio);
        self.suspect |= self.deviates(ratio, self.committed_cloud);
        self.observations += 1;
    }

    /// Record a realized upload: feature `ratio` (the paper's `r` =
    /// bits / link rate, in ms at nominal bandwidth) against the
    /// realized upload time in ms.
    #[inline]
    pub fn observe_upload(&mut self, ratio: f64, realized_ms: f64) {
        self.upload.push(ratio, realized_ms);
        // Residual against the committed line, in prediction space:
        // an undisturbed link predicts its own uploads exactly.
        let pred = self.committed_w0 + self.committed_w1 * ratio;
        self.suspect |= self.deviates(realized_ms, pred);
        self.observations += 1;
    }

    /// Current (uncommitted) device scale estimate for `layer`:
    /// direct evidence when the ladder has run that exact prefix,
    /// pooled evidence otherwise.
    pub fn device_estimate(&self, layer: usize) -> f64 {
        self.effective_device(layer).unwrap_or(1.0)
    }

    /// Direct tracker for `layer` if it has evidence, else the pooled
    /// tracker, else `None` (nothing observed yet).
    #[inline]
    fn effective_device(&self, layer: usize) -> Option<f64> {
        self.device
            .get(layer)
            .and_then(|e| e.value())
            .or_else(|| self.device_all.value())
    }

    /// Current (uncommitted) cloud scale estimate.
    pub fn cloud_estimate(&self) -> f64 {
        self.cloud.value().unwrap_or(1.0)
    }

    /// Current (uncommitted) upload fit, if the window supports one.
    pub fn upload_estimate(&self) -> Option<LinearRegression> {
        self.upload.fit()
    }

    /// Committed per-layer device scales (index 0..=k).
    pub fn device_scales(&self) -> &[f64] {
        &self.committed_device
    }

    /// Committed cloud scale.
    pub fn cloud_scale(&self) -> f64 {
        self.committed_cloud
    }

    /// Committed upload intercept `w0` in ms.
    pub fn setup_ms(&self) -> f64 {
        self.committed_w0
    }

    /// Committed upload slope scale `w1` (base 1).
    pub fn upload_scale(&self) -> f64 {
        self.committed_w1
    }

    /// Observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Commits performed so far — the generation a profile rebuilt from
    /// this estimator should carry.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    #[inline]
    fn moved(&self, est: f64, committed: f64) -> bool {
        let denom = committed.abs().max(1e-9);
        (est - committed).abs() / denom >= self.cfg.gate
    }

    /// Half-gate deviation test used to arm [`Self::suspect`].
    #[inline]
    fn deviates(&self, sample: f64, committed: f64) -> bool {
        let denom = committed.abs().max(1e-9);
        (sample - committed).abs() / denom >= self.cfg.gate * 0.5
    }

    /// Would a commit right now change anything? True once `min_obs`
    /// observations have arrived and at least one parameter estimate
    /// sits `gate` (relative) away from its committed value. Read-only
    /// and allocation-free — safe on the steady-state serving path.
    pub fn gate_crossed(&self) -> bool {
        if self.observations < self.cfg.min_obs || !self.suspect {
            return false;
        }
        for layer in 1..self.device.len() {
            if let Some(v) = self.effective_device(layer) {
                if self.moved(v, self.committed_device[layer]) {
                    return true;
                }
            }
        }
        if let Some(v) = self.cloud.value() {
            if self.moved(v, self.committed_cloud) {
                return true;
            }
        }
        if let Some(fit) = self.upload.fit() {
            // Gate the intercept against the base setup scale so a
            // near-zero committed w0 cannot make the test hair-trigger.
            let w0_denom = self.base_setup_ms.abs().max(1e-9);
            if (fit.w0 - self.committed_w0).abs() / w0_denom >= self.cfg.gate
                || self.moved(fit.w1, self.committed_w1)
            {
                return true;
            }
        }
        false
    }

    /// Fold the current estimates into the committed snapshot if the
    /// gate is crossed. Returns `true` (and bumps the generation) only
    /// when something actually moved; a `false` return means the
    /// committed snapshot — and every plan built from it — is
    /// untouched.
    pub fn commit(&mut self) -> bool {
        if !self.gate_crossed() {
            return false;
        }
        for layer in 1..self.device.len() {
            if let Some(v) = self.effective_device(layer) {
                self.committed_device[layer] = v;
            }
        }
        if let Some(v) = self.cloud.value() {
            self.committed_cloud = v;
        }
        if let Some(fit) = self.upload.fit() {
            // A negative intercept is a fit artifact (no channel pays
            // you to open it); clamp rather than propagate.
            self.committed_w0 = fit.w0.max(0.0);
            self.committed_w1 = fit.w1.max(0.0);
        }
        self.commits += 1;
        // The estimates just became the committed values; stay cheap
        // until some sample deviates from the new snapshot.
        self.suspect = false;
        true
    }

    /// Version stamp of the committed snapshot: generation = commit
    /// count, digest = FNV-1a over every committed parameter's bits.
    /// Bit-identical observation streams yield bit-identical stamps.
    pub fn version(&self) -> ProfileVersion {
        let mut h = fnv_fold(FNV_OFFSET, self.commits);
        h = fnv_fold(h, self.committed_device.len() as u64);
        for &d in &self.committed_device {
            h = fnv_fold(h, d.to_bits());
        }
        h = fnv_fold(h, self.committed_cloud.to_bits());
        h = fnv_fold(h, self.committed_w0.to_bits());
        h = fnv_fold(h, self.committed_w1.to_bits());
        ProfileVersion {
            generation: self.commits,
            digest: h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_debias_is_exact_from_first_sample() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), None);
        e.observe(4.0);
        // A biased EWMA would report 0.4 here; debiasing recovers 4.
        assert!((e.value().unwrap() - 4.0).abs() < 1e-12);
        for _ in 0..200 {
            e.observe(4.0);
        }
        assert!((e.value().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(e.count(), 201);
    }

    #[test]
    fn ewma_tracks_a_step_change() {
        let mut e = Ewma::new(0.2);
        for _ in 0..50 {
            e.observe(1.0);
        }
        for _ in 0..50 {
            e.observe(2.0);
        }
        let v = e.value().unwrap();
        assert!(v > 1.99 && v <= 2.0, "converged to the new level: {v}");
        // Non-finite samples are dropped, not folded.
        e.observe(f64::NAN);
        assert!((e.value().unwrap() - v).abs() < 1e-12);
    }

    #[test]
    fn window_regression_slides_and_refits() {
        let mut w = WindowRegression::new(8);
        assert!(w.fit().is_none());
        // First regime: y = 10 + 2x.
        for i in 0..8 {
            w.push(i as f64, 10.0 + 2.0 * i as f64);
        }
        let r = w.fit().unwrap();
        assert!((r.w1 - 2.0).abs() < 1e-9 && (r.w0 - 10.0).abs() < 1e-9);
        // Second regime: y = 1 + 5x. After 8 more pushes the window
        // holds only the new regime.
        for i in 0..8 {
            w.push(i as f64, 1.0 + 5.0 * i as f64);
        }
        let r = w.fit().unwrap();
        assert!((r.w1 - 5.0).abs() < 1e-9 && (r.w0 - 1.0).abs() < 1e-9);
        assert_eq!(w.len(), 8);
        assert_eq!(w.total(), 16);
    }

    #[test]
    fn estimator_gates_until_confident_and_moved() {
        let cfg = AdaptConfig {
            min_obs: 8,
            gate: 0.05,
            ..AdaptConfig::default()
        };
        let mut est = ProfileEstimator::new(4, 10.0, cfg);
        // Large drift but too few observations: gated.
        for _ in 0..4 {
            est.observe_device(4, 1.5);
        }
        assert!(!est.gate_crossed());
        assert!(!est.commit());
        // Enough observations of a sub-gate drift: still gated.
        let mut est2 = ProfileEstimator::new(4, 10.0, cfg);
        for _ in 0..20 {
            est2.observe_device(4, 1.02);
        }
        assert!(!est2.gate_crossed(), "2% drift under a 5% gate");
        // Enough observations of a real drift: commit fires once, then
        // the committed value matches and the gate closes again.
        for _ in 0..20 {
            est.observe_device(4, 1.5);
        }
        assert!(est.gate_crossed());
        assert!(est.commit());
        assert_eq!(est.commits(), 1);
        assert!((est.device_scales()[4] - 1.5).abs() < 0.05);
        assert!(!est.commit(), "second commit with no new drift is a no-op");
        assert_eq!(est.commits(), 1);
    }

    #[test]
    fn upload_regression_recovers_link_parameters() {
        let mut est = ProfileEstimator::new(2, 40.0, AdaptConfig::default());
        // Link slowed to 80% rate and setup grew to 55 ms: realized
        // t = 55 + r / 0.8.
        for i in 0..32 {
            let r = 5.0 + (i % 7) as f64 * 3.0;
            est.observe_upload(r, 55.0 + r / 0.8);
        }
        assert!(est.gate_crossed());
        assert!(est.commit());
        assert!((est.setup_ms() - 55.0).abs() < 1e-6);
        assert!((est.upload_scale() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn version_is_deterministic_and_moves_only_on_commit() {
        let cfg = AdaptConfig::default();
        let mut a = ProfileEstimator::new(3, 10.0, cfg);
        let mut b = ProfileEstimator::new(3, 10.0, cfg);
        let v0 = a.version();
        assert_eq!(v0.generation, 0);
        for i in 0..32 {
            let r = 1.3 + (i % 5) as f64 * 0.01;
            a.observe_device(3, r);
            b.observe_device(3, r);
            a.observe_cloud(1.1);
            b.observe_cloud(1.1);
        }
        // Identical streams ⇒ identical stamps, before and after commit.
        assert_eq!(a.version(), b.version());
        assert_eq!(a.version(), v0, "observations alone never move the version");
        assert!(a.commit() && b.commit());
        assert_eq!(a.version(), b.version());
        assert_eq!(a.version().generation, 1);
        assert_ne!(a.version().digest, v0.digest);
    }

    #[test]
    fn config_default_is_sane() {
        let c = AdaptConfig::default();
        assert!(c.alpha > 0.0 && c.alpha <= 1.0);
        assert!(c.gate > 0.0 && c.gate < 1.0);
        assert!(c.min_obs >= 1 && c.window >= 2 && c.commit_every >= 1);
    }
}
