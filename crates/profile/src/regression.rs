//! Ordinary least squares in one variable: `y = w0 + w1·x`.
//!
//! The paper's scheduler estimates communication delay with "a simple
//! linear regression model … t = w0 + w1·r" trained on measured
//! request round-trips (§6.1). This module is that estimator.

/// A fitted simple linear regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    /// Intercept `w0` (the paper's channel-setup latency).
    pub w0: f64,
    /// Slope `w1`.
    pub w1: f64,
}

impl LinearRegression {
    /// Fit by ordinary least squares. Returns `None` for fewer than two
    /// points or a degenerate (constant-x) design.
    ///
    /// Uses the centred formulation `w1 = Σ(x−x̄)(y−ȳ) / Σ(x−x̄)²`
    /// rather than the textbook raw-moment form `(nΣxy − ΣxΣy) /
    /// (nΣx² − (Σx)²)`: with the samples an online estimator produces —
    /// x values clustered in a narrow band far from zero — the raw
    /// moments agree to most of their significant digits and their
    /// difference is almost pure cancellation noise, which turns the
    /// fitted slope into garbage. Centring first keeps every term on
    /// the scale of the actual spread.
    pub fn fit(points: &[(f64, f64)]) -> Option<Self> {
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let mean_x: f64 = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y: f64 = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        let sxy: f64 = points
            .iter()
            .map(|p| (p.0 - mean_x) * (p.1 - mean_y))
            .sum();
        // Degenerate when the spread is at rounding scale relative to
        // the magnitude of x itself (constant or near-constant design).
        if sxx <= f64::EPSILON * n * (mean_x * mean_x).max(1.0) {
            return None;
        }
        let w1 = sxy / sxx;
        let w0 = mean_y - w1 * mean_x;
        Some(LinearRegression { w0, w1 })
    }

    /// Predict `y` at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.w0 + self.w1 * x
    }

    /// Coefficient of determination on a dataset.
    pub fn r_squared(&self, points: &[(f64, f64)]) -> f64 {
        if points.is_empty() {
            return f64::NAN;
        }
        let mean_y: f64 = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| (p.1 - self.predict(p.0)).powi(2))
            .sum();
        if ss_tot == 0.0 {
            if ss_res == 0.0 {
                1.0
            } else {
                f64::NEG_INFINITY
            }
        } else {
            1.0 - ss_res / ss_tot
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 + 2.5 * i as f64)).collect();
        let r = LinearRegression::fit(&pts).unwrap();
        assert!((r.w0 - 3.0).abs() < 1e-9);
        assert!((r.w1 - 2.5).abs() < 1e-9);
        assert!((r.r_squared(&pts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_designs_rejected() {
        assert!(LinearRegression::fit(&[]).is_none());
        assert!(LinearRegression::fit(&[(1.0, 2.0)]).is_none());
        assert!(LinearRegression::fit(&[(1.0, 2.0), (1.0, 3.0), (1.0, 4.0)]).is_none());
    }

    #[test]
    fn least_squares_beats_any_other_line_on_sse() {
        let pts = [
            (0.0, 1.1),
            (1.0, 2.9),
            (2.0, 5.2),
            (3.0, 6.8),
            (4.0, 9.1),
        ];
        let fitted = LinearRegression::fit(&pts).unwrap();
        let sse = |r: &LinearRegression| -> f64 {
            pts.iter().map(|p| (p.1 - r.predict(p.0)).powi(2)).sum()
        };
        let best = sse(&fitted);
        for dw0 in [-0.2, -0.05, 0.05, 0.2] {
            for dw1 in [-0.2, -0.05, 0.05, 0.2] {
                let other = LinearRegression {
                    w0: fitted.w0 + dw0,
                    w1: fitted.w1 + dw1,
                };
                assert!(sse(&other) >= best - 1e-12);
            }
        }
    }

    #[test]
    fn clustered_offset_samples_stay_well_conditioned() {
        // The shape an online estimator feeds the fit: x is a
        // transfer-time ratio clustered in a narrow band around a large
        // offset (steady bandwidth ⇒ near-constant ratio). The
        // raw-moment formula loses ~12 significant digits to
        // cancellation here (nΣx² and (Σx)² agree to ~1e-7 relative);
        // the centred form recovers the line to full precision.
        let (w0, w1) = (40.0, 1.07);
        let pts: Vec<(f64, f64)> = (0..64)
            .map(|i| {
                let x = 5.0e6 + (i as f64) * 1.0e-2; // offset 5e6, spread 0.63
                (x, w0 + w1 * x)
            })
            .collect();
        let r = LinearRegression::fit(&pts).expect("well-posed design");
        assert!(
            (r.w1 - w1).abs() < 1e-6,
            "slope {} drifted from {w1} under clustered/offset x",
            r.w1
        );
        // The intercept extrapolates 5e6 units back to x=0, so the
        // tolerance scales with offset·slope_error; what matters is the
        // prediction inside the sampled band is exact.
        for p in &pts {
            assert!((r.predict(p.0) - p.1).abs() < 1e-6);
        }
        // Spread at true rounding scale is still rejected, not fit.
        let flat: Vec<(f64, f64)> = (0..8).map(|_| (5.0e6, 1.0)).collect();
        assert!(LinearRegression::fit(&flat).is_none());
    }

    #[test]
    fn r_squared_of_constant_data() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let r = LinearRegression { w0: 5.0, w1: 0.0 };
        assert_eq!(r.r_squared(&pts), 1.0);
    }
}
