//! Synthetic measurement generation.
//!
//! The paper's profiler measures real hardware: PyTorch Profiler for
//! compute, timed gRPC round-trips for communication (§6.1). We have no
//! hardware, so this module *generates* measurements from the analytic
//! models plus multiplicative Gaussian-ish noise — exercising the same
//! estimation pipeline (measure → average into lookup table / fit
//! regression → schedule) the paper runs.

use mcdnn_graph::LineDnn;
use mcdnn_rng::Rng;

use crate::device::DeviceModel;
use crate::network::NetworkModel;
use crate::regression::LinearRegression;

/// One simulated measurement of the full `f` vector of a model:
/// per-cut mobile compute times with `noise_frac` relative jitter.
pub fn measure_f(
    rng: &mut Rng,
    line: &LineDnn,
    device: &DeviceModel,
    noise_frac: f64,
) -> Vec<f64> {
    assert!((0.0..1.0).contains(&noise_frac), "noise fraction in [0,1)");
    (0..=line.k())
        .map(|cut| {
            let t = device.time_ms(line.mobile_flops(cut), cut);
            jitter(rng, t, noise_frac)
        })
        .collect()
}

/// Simulated timed-upload samples `(ratio r = s/b, measured ms)` for
/// random message sizes, as the paper's gRPC timing loop would produce.
pub fn measure_uploads(
    rng: &mut Rng,
    network: &NetworkModel,
    sizes: &[usize],
    noise_frac: f64,
) -> Vec<(f64, f64)> {
    sizes
        .iter()
        .map(|&s| {
            let r = network.ratio(s);
            let t = jitter(rng, network.upload_ms(s), noise_frac);
            (r, t)
        })
        .collect()
}

/// Fit the paper's communication regression `t = w0 + w1·r` from timed
/// samples. Returns `None` for degenerate sample sets.
pub fn fit_comm_model(samples: &[(f64, f64)]) -> Option<LinearRegression> {
    LinearRegression::fit(samples)
}

fn jitter(rng: &mut Rng, value: f64, frac: f64) -> f64 {
    if frac == 0.0 || value == 0.0 {
        return value;
    }
    // Sum of uniforms ≈ normal; cheap, no extra deps, bounded support.
    let u: f64 = (0..4).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>() / 2.0;
    (value * (1.0 + frac * u)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdnn_graph::LineLayer;

    fn line() -> LineDnn {
        LineDnn::from_parts(
            "t",
            1 << 20,
            (1..=6)
                .map(|i| LineLayer {
                    name: format!("l{i}"),
                    flops: 10_000_000,
                    out_bytes: (1 << 20) >> i,
                    nodes: vec![],
                })
                .collect(),
        )
    }

    #[test]
    fn noiseless_measure_matches_model() {
        let mut rng = Rng::seed_from_u64(1);
        let dev = DeviceModel::new("d", 1e9, 0.5);
        let f = measure_f(&mut rng, &line(), &dev, 0.0);
        assert_eq!(f.len(), 7);
        assert_eq!(f[0], 0.0);
        assert!((f[3] - dev.time_ms(30_000_000, 3)).abs() < 1e-12);
    }

    #[test]
    fn noisy_measure_is_close_and_nonnegative() {
        let mut rng = Rng::seed_from_u64(2);
        let dev = DeviceModel::new("d", 1e9, 0.0);
        for _ in 0..50 {
            let f = measure_f(&mut rng, &line(), &dev, 0.1);
            for (cut, v) in f.iter().enumerate() {
                let truth = dev.time_ms(line().mobile_flops(cut), cut);
                assert!(*v >= 0.0);
                assert!((v - truth).abs() <= truth * 0.15 + 1e-9);
            }
        }
    }

    #[test]
    fn regression_recovers_network_parameters() {
        let mut rng = Rng::seed_from_u64(3);
        let net = NetworkModel::new(10.0, 25.0);
        let sizes: Vec<usize> = (1..=40).map(|i| i * 25_000).collect();
        let samples = measure_uploads(&mut rng, &net, &sizes, 0.05);
        let fit = fit_comm_model(&samples).unwrap();
        // w0 ≈ setup latency, w1 ≈ 1 (ratio already in ms units).
        assert!((fit.w0 - 25.0).abs() < 8.0, "w0 = {}", fit.w0);
        assert!((fit.w1 - 1.0).abs() < 0.05, "w1 = {}", fit.w1);
        assert!(fit.r_squared(&samples) > 0.99);
    }

    #[test]
    fn averaged_noisy_runs_converge_to_truth() {
        let mut rng = Rng::seed_from_u64(4);
        let dev = DeviceModel::new("d", 1e9, 0.0);
        let l = line();
        let runs: Vec<Vec<f64>> = (0..200).map(|_| measure_f(&mut rng, &l, &dev, 0.2)).collect();
        let mut table = crate::lookup::LookupTable::new();
        table.insert_averaged("t", &runs);
        let truth = dev.time_ms(l.mobile_flops(6), 6);
        let est = table.f("t", 6).unwrap();
        assert!((est - truth).abs() < truth * 0.02, "est {est} vs {truth}");
    }
}
