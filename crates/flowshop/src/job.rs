//! Flow-shop jobs.

/// A job with a mobile computation stage, a communication stage and an
/// optional cloud computation stage, all in milliseconds.
///
/// In the paper's mapping: `compute_ms = f(P_j)`, `comm_ms = g(P_j)`,
/// and `cloud_ms` is the (usually negligible) remote remainder. The
/// communication stage cannot start before the computation stage
/// completes; each stage occupies its machine exclusively (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowJob {
    /// Stable job identifier (index into the caller's job list).
    pub id: usize,
    /// Stage-1 duration: mobile computation `f`.
    pub compute_ms: f64,
    /// Stage-2 duration: uplink communication `g`.
    pub comm_ms: f64,
    /// Stage-3 duration: cloud computation (0 under the paper's
    /// negligible-cloud assumption).
    pub cloud_ms: f64,
}

impl FlowJob {
    /// A two-stage job (cloud stage zero).
    pub fn two_stage(id: usize, compute_ms: f64, comm_ms: f64) -> Self {
        FlowJob {
            id,
            compute_ms,
            comm_ms,
            cloud_ms: 0.0,
        }
    }

    /// A three-stage job.
    pub fn three_stage(id: usize, compute_ms: f64, comm_ms: f64, cloud_ms: f64) -> Self {
        FlowJob {
            id,
            compute_ms,
            comm_ms,
            cloud_ms,
        }
    }

    /// True when all stage durations are finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [self.compute_ms, self.comm_ms, self.cloud_ms]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Communication-heavy per the paper's Alg. 1 line 2:
    /// `f(P_j) < g(P_j)`.
    pub fn is_comm_heavy(&self) -> bool {
        self.compute_ms < self.comm_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let j = FlowJob::two_stage(3, 4.0, 6.0);
        assert_eq!(j.id, 3);
        assert_eq!(j.cloud_ms, 0.0);
        assert!(j.is_comm_heavy());
        let j2 = FlowJob::three_stage(0, 7.0, 2.0, 1.0);
        assert!(!j2.is_comm_heavy());
        assert!(j2.is_valid());
    }

    #[test]
    fn validity() {
        assert!(!FlowJob::two_stage(0, f64::NAN, 1.0).is_valid());
        assert!(!FlowJob::two_stage(0, -1.0, 1.0).is_valid());
        assert!(FlowJob::two_stage(0, 0.0, 0.0).is_valid());
    }

    #[test]
    fn boundary_equal_stages_is_compute_heavy() {
        // Paper: S2 takes f >= g, so equality is computation-heavy.
        assert!(!FlowJob::two_stage(0, 5.0, 5.0).is_comm_heavy());
    }
}
