//! Total flow time (`F2 || ΣC_j`): minimising the *sum* of completion
//! times rather than the makespan.
//!
//! Makespan is the throughput objective (the paper's); a user staring
//! at per-frame results cares about mean completion. `F2 || ΣC_j` is
//! NP-hard (Garey–Johnson–Sethi), so this module provides the two
//! classical heuristics plus an exhaustive oracle:
//!
//! * **SPT** on total processing time `f + g` — the single-machine
//!   optimum's natural lift;
//! * **NEH-style insertion** evaluating total completion directly;
//! * [`best_flowtime_permutation`] for validation on small instances.
//!
//! Johnson's order optimises the makespan and can be noticeably worse
//! on flow time (quantified in the tests) — choosing the objective is a
//! real decision, not a formality.

use crate::job::FlowJob;
use crate::makespan::gantt;

/// Sum of completion times of `order`.
pub fn total_flowtime(jobs: &[FlowJob], order: &[usize]) -> f64 {
    gantt(jobs, order)
        .completion_times()
        .iter()
        .map(|&(_, t)| t)
        .sum()
}

/// Shortest-processing-time order on `f + g + cloud`.
pub fn spt_order(jobs: &[FlowJob]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        let ta = jobs[a].compute_ms + jobs[a].comm_ms + jobs[a].cloud_ms;
        let tb = jobs[b].compute_ms + jobs[b].comm_ms + jobs[b].cloud_ms;
        ta.total_cmp(&tb).then(a.cmp(&b))
    });
    order
}

/// NEH-style insertion minimising total flow time: jobs in SPT order,
/// each inserted at its best position.
pub fn neh_flowtime_order(jobs: &[FlowJob]) -> Vec<usize> {
    let mut order: Vec<usize> = Vec::with_capacity(jobs.len());
    for &j in &spt_order(jobs) {
        let mut best_pos = 0;
        let mut best = f64::INFINITY;
        for pos in 0..=order.len() {
            order.insert(pos, j);
            let ft = total_flowtime(jobs, &order);
            if ft < best {
                best = ft;
                best_pos = pos;
            }
            order.remove(pos);
        }
        order.insert(best_pos, j);
    }
    order
}

/// Best of SPT and NEH-insertion by total flow time.
pub fn flowtime_order(jobs: &[FlowJob]) -> Vec<usize> {
    let spt = spt_order(jobs);
    let neh = neh_flowtime_order(jobs);
    if total_flowtime(jobs, &spt) <= total_flowtime(jobs, &neh) {
        spt
    } else {
        neh
    }
}

/// Exhaustive flow-time optimum (≤ 9 jobs), for validation.
pub fn best_flowtime_permutation(jobs: &[FlowJob]) -> (Vec<usize>, f64) {
    assert!(jobs.len() <= 9, "flow-time brute force capped at 9 jobs");
    let n = jobs.len();
    if n == 0 {
        return (vec![], 0.0);
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = perm.clone();
    let mut best_ft = total_flowtime(jobs, &perm);
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let ft = total_flowtime(jobs, &perm);
            if ft < best_ft {
                best_ft = ft;
                best.copy_from_slice(&perm);
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best, best_ft)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::johnson::johnson_order;
    use crate::makespan::makespan;

    fn jobs(spec: &[(f64, f64)]) -> Vec<FlowJob> {
        spec.iter()
            .enumerate()
            .map(|(i, &(f, g))| FlowJob::two_stage(i, f, g))
            .collect()
    }

    #[test]
    fn spt_orders_by_total_time() {
        let js = jobs(&[(5.0, 5.0), (1.0, 1.0), (3.0, 2.0)]);
        assert_eq!(spt_order(&js), vec![1, 2, 0]);
    }

    #[test]
    fn heuristic_close_to_optimal() {
        let mut state = 0xFEEDu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f64 / 10.0 + 0.1
        };
        let mut worst: f64 = 1.0;
        for _ in 0..40 {
            let js: Vec<FlowJob> = (0..7)
                .map(|i| FlowJob::two_stage(i, rng(), rng()))
                .collect();
            let heur = total_flowtime(&js, &flowtime_order(&js));
            let (_, opt) = best_flowtime_permutation(&js);
            worst = worst.max(heur / opt);
        }
        assert!(worst < 1.06, "flow-time heuristic ratio {worst}");
    }

    #[test]
    fn johnson_optimises_makespan_not_flowtime() {
        // A mix where Johnson front-loads a long comm-heavy job (good
        // for pipelining) that SPT correctly defers (good for mean
        // completion).
        let js = jobs(&[(1.0, 30.0), (5.0, 1.0), (4.0, 1.0), (3.0, 1.0)]);
        let j = johnson_order(&js);
        let f = flowtime_order(&js);
        assert!(total_flowtime(&js, &f) < total_flowtime(&js, &j));
        assert!(makespan(&js, &j) <= makespan(&js, &f));
    }

    #[test]
    fn identical_jobs_any_order_equal() {
        let js = jobs(&[(4.0, 3.0); 5]);
        let a = total_flowtime(&js, &flowtime_order(&js));
        let b = total_flowtime(&js, &johnson_order(&js));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(total_flowtime(&[], &[]), 0.0);
        let js = jobs(&[(2.0, 3.0)]);
        assert_eq!(total_flowtime(&js, &[0]), 5.0);
        assert_eq!(flowtime_order(&js), vec![0]);
    }
}
