//! Closed-form O(1) makespan kernels for homogeneous job blocks.
//!
//! The planner's candidates are never arbitrary job sets: every JPS
//! candidate is either `n` identical jobs (a uniform cut) or two
//! homogeneous blocks of adjacent cut types, and the brute-force
//! baseline enumerates multisets over at most `k + 1` types. Inside a
//! homogeneous block Johnson's rule is indifferent to order, and the
//! two-stage recurrence over `n` identical jobs `(f, g)` telescopes to
//! a closed form — so a candidate can be *scored* in O(1) (uniform),
//! O(1) (two-type mix) or O(k log k) (multiset) without building jobs,
//! sorting them, or running the O(n) recurrence.
//!
//! Derivation (all from the standard `F2` recurrence, see
//! [`crate::makespan::makespan`]): pushing a block of `n` identical
//! jobs `(f, g)` with `g > 0` onto a pipeline whose machines become
//! free at `(m1, m2)` gives
//!
//! ```text
//! m1' = m1 + n·f
//! m2' = max(m2 + n·g,  m1 + f + n·g,  m1 + n·f + g)
//! ```
//!
//! because the uplink completion after job `j` of the block is
//! `max(m2 + j·g, m1 + j·f + (n−j+1)·g)` and the inner expression is
//! linear in `j`, so its maximum sits at an endpoint. Jobs with
//! `g = 0` skip machine 2 entirely (matching the recurrence's
//! local-only rule). From the empty state this reduces to the familiar
//! `min(f, g) + n·max(f, g)` for a uniform block, and the two-type mix
//! is two block pushes in Johnson order — the comm-heavy block
//! (`f < g`) first, then the compute-heavy block.
//!
//! Every kernel here is cross-checked against the simulated recurrence
//! (and, in `mcdnn-sim`, against the discrete-event simulator) by unit
//! and property tests to 1e-9.

use crate::job::FlowJob;
use crate::johnson::johnson_order;
use crate::makespan::makespan;

/// Machine-availability state of the two-stage pipeline: the instant
/// each machine becomes free. Push homogeneous blocks in schedule
/// order, then read [`PipelineState::makespan`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineState {
    /// Mobile CPU (machine 1) free at, ms.
    pub m1: f64,
    /// Uplink (machine 2) free at, ms.
    pub m2: f64,
}

impl PipelineState {
    /// Fresh pipeline (both machines free at 0).
    pub fn new() -> Self {
        PipelineState::default()
    }

    /// Process `n` identical jobs `(f, g)` in O(1); see the module docs
    /// for the closed form. Jobs with `g == 0` never touch machine 2.
    pub fn push_block(&mut self, n: usize, f: f64, g: f64) {
        if n == 0 {
            return;
        }
        debug_assert!(f >= 0.0 && g >= 0.0, "stage times must be >= 0");
        let nf = n as f64;
        let m1_in = self.m1;
        self.m1 += nf * f;
        if g > 0.0 {
            self.m2 = (self.m2 + nf * g)
                .max(m1_in + f + nf * g)
                .max(m1_in + nf * f + g);
        }
    }

    /// Makespan of everything pushed so far (completion of the later
    /// machine; jobs that skipped machine 2 finish by `m1`).
    pub fn makespan(&self) -> f64 {
        self.m1.max(self.m2)
    }
}

/// O(1) makespan of `n` identical jobs `(f, g)`:
/// `min(f, g) + n·max(f, g)` (0 for `n = 0`), which for `g = 0`
/// degenerates to `n·f` exactly as the recurrence's local-only rule
/// demands.
///
/// ```
/// use mcdnn_flowshop::{uniform_makespan, makespan, johnson_order, FlowJob};
///
/// let jobs: Vec<FlowJob> = (0..10).map(|i| FlowJob::two_stage(i, 4.0, 6.0)).collect();
/// let exact = makespan(&jobs, &johnson_order(&jobs));
/// assert!((uniform_makespan(10, 4.0, 6.0) - exact).abs() < 1e-9);
/// ```
pub fn uniform_makespan(n: usize, f: f64, g: f64) -> f64 {
    let mut state = PipelineState::new();
    state.push_block(n, f, g);
    state.makespan()
}

/// Which of two homogeneous blocks Johnson's rule schedules first.
///
/// Matches [`johnson_order`] exactly for job sets where block-1 jobs
/// carry lower ids than block-2 jobs (the layout every planner
/// candidate uses): comm-heavy (`f < g`) before compute-heavy;
/// within two comm-heavy blocks ascending `f` (ties → block 1,
/// the lower ids); within two compute-heavy blocks descending `g`
/// (ties → block 1).
fn first_block_is_one(f1: f64, g1: f64, f2: f64, g2: f64) -> bool {
    let one_comm = f1 < g1;
    let two_comm = f2 < g2;
    match (one_comm, two_comm) {
        (true, false) => true,
        (false, true) => false,
        (true, true) => f1 <= f2,
        (false, false) => g1 >= g2,
    }
}

/// O(1) makespan of the two-type mix the paper's Theorem 5.3 plans:
/// `a` jobs `(f1, g1)` and `b` jobs `(f2, g2)`, scheduled by Johnson's
/// rule (each homogeneous block stays contiguous; the comm-heavy block
/// goes first).
///
/// ```
/// use mcdnn_flowshop::two_type_mix_makespan;
///
/// // The paper's Fig. 2 optimum: one job at each adjacent cut -> 13 ms.
/// assert_eq!(two_type_mix_makespan(1, 4.0, 6.0, 1, 7.0, 2.0), 13.0);
/// ```
pub fn two_type_mix_makespan(a: usize, f1: f64, g1: f64, b: usize, f2: f64, g2: f64) -> f64 {
    let mut state = PipelineState::new();
    if a == 0 || b == 0 || first_block_is_one(f1, g1, f2, g2) {
        state.push_block(a, f1, g1);
        state.push_block(b, f2, g2);
    } else {
        state.push_block(b, f2, g2);
        state.push_block(a, f1, g1);
    }
    state.makespan()
}

/// Makespan of a multiset of homogeneous blocks `(count, f, g)` under
/// Johnson's rule, in O(t log t) for `t` block types — independent of
/// the total job count. Blocks with `count == 0` are ignored.
///
/// Used by the brute-force baseline (which enumerates cut multisets
/// over `k + 1` types) and the multi-path scheduler: the per-candidate
/// cost drops from O(n log n) to O(k log k).
pub fn johnson_blocks_makespan(blocks: &[(usize, f64, f64)]) -> f64 {
    // Johnson order over block types: comm-heavy ascending f, then
    // compute-heavy descending g. A stable sort keeps equal keys in
    // input order, mirroring johnson_order's id tie-break when blocks
    // are listed in id order.
    let mut s1: Vec<usize> = Vec::with_capacity(blocks.len());
    let mut s2: Vec<usize> = Vec::with_capacity(blocks.len());
    for (i, &(count, f, g)) in blocks.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if f < g {
            s1.push(i);
        } else {
            s2.push(i);
        }
    }
    s1.sort_by(|&a, &b| blocks[a].1.total_cmp(&blocks[b].1));
    s2.sort_by(|&a, &b| blocks[b].2.total_cmp(&blocks[a].2));
    let mut state = PipelineState::new();
    for &i in s1.iter().chain(&s2) {
        let (count, f, g) = blocks[i];
        state.push_block(count, f, g);
    }
    state.makespan()
}

/// Reference check: materialize the blocks as jobs, run Johnson's rule
/// and the exact recurrence. Test/validation helper — the whole point
/// of the kernels is to avoid calling this on the hot path.
pub fn simulated_blocks_makespan(blocks: &[(usize, f64, f64)]) -> f64 {
    let mut jobs: Vec<FlowJob> = Vec::new();
    for &(count, f, g) in blocks {
        for _ in 0..count {
            jobs.push(FlowJob::two_stage(jobs.len(), f, g));
        }
    }
    makespan(&jobs, &johnson_order(&jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, ctx: &str) {
        assert!((a - b).abs() < 1e-9, "{ctx}: kernel {a} vs reference {b}");
    }

    #[test]
    fn uniform_matches_recurrence_exhaustively() {
        let cases = [
            (4.0, 6.0),
            (7.0, 2.0),
            (5.0, 5.0),
            (0.0, 3.0),
            (3.0, 0.0),
            (0.0, 0.0),
            (0.125, 17.75),
        ];
        for &(f, g) in &cases {
            for n in 0..=50 {
                let kernel = uniform_makespan(n, f, g);
                let reference = simulated_blocks_makespan(&[(n, f, g)]);
                assert_close(kernel, reference, &format!("n={n} f={f} g={g}"));
            }
        }
    }

    #[test]
    fn uniform_closed_form_identity() {
        // min + n·max, the shape quoted in the paper's §4.2 analysis.
        for n in 1..=20 {
            for &(f, g) in &[(4.0, 6.0), (9.0, 2.0), (3.0, 3.0)] {
                assert_close(
                    uniform_makespan(n, f, g),
                    f.min(g) + n as f64 * f.max(g),
                    "identity",
                );
            }
        }
    }

    #[test]
    fn mix_matches_recurrence_exhaustively() {
        let pairs = [
            ((4.0, 6.0), (7.0, 2.0)),  // comm-heavy + compute-heavy (paper Fig. 2)
            ((7.0, 2.0), (4.0, 6.0)),  // reversed roles
            ((1.0, 9.0), (2.0, 8.0)),  // both comm-heavy
            ((9.0, 1.0), (8.0, 2.0)),  // both compute-heavy
            ((5.0, 5.0), (5.0, 5.0)),  // exact balance, identical
            ((3.0, 3.0), (4.0, 4.0)),  // both balanced (compute-heavy class)
            ((2.0, 0.0), (1.0, 5.0)),  // local-only block in the mix
            ((0.5, 9.5), (0.5, 9.5)),  // identical comm-heavy
        ];
        for &((f1, g1), (f2, g2)) in &pairs {
            for a in 0..=12 {
                for b in 0..=12 {
                    let kernel = two_type_mix_makespan(a, f1, g1, b, f2, g2);
                    let reference =
                        simulated_blocks_makespan(&[(a, f1, g1), (b, f2, g2)]);
                    assert_close(
                        kernel,
                        reference,
                        &format!("a={a} b={b} ({f1},{g1})+({f2},{g2})"),
                    );
                }
            }
        }
    }

    #[test]
    fn mix_closed_form_on_paper_fig2() {
        assert_eq!(two_type_mix_makespan(1, 4.0, 6.0, 1, 7.0, 2.0), 13.0);
        assert_eq!(two_type_mix_makespan(2, 4.0, 6.0, 0, 7.0, 2.0), 16.0);
        assert_eq!(two_type_mix_makespan(0, 4.0, 6.0, 2, 7.0, 2.0), 16.0);
    }

    #[test]
    fn blocks_match_recurrence_on_multisets() {
        let profiles: [&[(f64, f64)]; 3] = [
            &[(0.0, 9.0), (4.0, 6.0), (7.0, 2.0), (20.0, 0.0)],
            &[(0.0, 12.0), (2.0, 8.0), (9.0, 1.0), (11.0, 0.0)],
            &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)],
        ];
        for types in &profiles {
            // All multisets of size <= 4 over the types.
            let t = types.len();
            let mut counts = vec![0usize; t];
            fn rec(
                counts: &mut Vec<usize>,
                pos: usize,
                left: usize,
                types: &[(f64, f64)],
            ) {
                if pos == counts.len() {
                    let blocks: Vec<(usize, f64, f64)> = counts
                        .iter()
                        .zip(types)
                        .map(|(&c, &(f, g))| (c, f, g))
                        .collect();
                    let kernel = johnson_blocks_makespan(&blocks);
                    let reference = simulated_blocks_makespan(&blocks);
                    assert!(
                        (kernel - reference).abs() < 1e-9,
                        "{blocks:?}: {kernel} vs {reference}"
                    );
                    return;
                }
                for c in 0..=left {
                    counts[pos] = c;
                    rec(counts, pos + 1, left - c, types);
                    counts[pos] = 0;
                }
            }
            rec(&mut counts, 0, 4, types);
        }
    }

    #[test]
    fn block_pushes_compose() {
        // Pushing (a of X, b of Y) equals the mix kernel when the push
        // order is the Johnson order.
        let mut s = PipelineState::new();
        s.push_block(3, 4.0, 6.0);
        s.push_block(2, 7.0, 2.0);
        assert_close(
            s.makespan(),
            two_type_mix_makespan(3, 4.0, 6.0, 2, 7.0, 2.0),
            "compose",
        );
    }

    #[test]
    fn empty_blocks_are_identity() {
        let mut s = PipelineState::new();
        s.push_block(0, 99.0, 99.0);
        assert_eq!(s.makespan(), 0.0);
        assert_eq!(johnson_blocks_makespan(&[]), 0.0);
        assert_eq!(johnson_blocks_makespan(&[(0, 5.0, 5.0)]), 0.0);
    }

    #[test]
    fn local_only_blocks_never_touch_machine_two() {
        let mut s = PipelineState::new();
        s.push_block(4, 3.0, 0.0);
        assert_eq!(s.m2, 0.0);
        assert_eq!(s.makespan(), 12.0);
        // A later uploading block starts machine 2 from scratch.
        s.push_block(1, 1.0, 2.0);
        assert_eq!(s.makespan(), 15.0);
    }
}
