//! Release times (`F2 | r_j | C_max`): jobs arriving over time.
//!
//! The paper assumes all jobs available at time 0 ("All jobs in J are
//! available at the time 0", §3.1). Real frame sources release jobs
//! periodically — a camera at 30 fps frees one job every 33 ms. With
//! release dates the problem is NP-hard even on two machines; this
//! module provides:
//!
//! * exact schedule evaluation respecting releases,
//! * **list scheduling**: whenever the mobile CPU frees up, start the
//!   released-but-unscheduled job with the best Johnson priority,
//! * exhaustive search for validation on tiny instances.

use crate::job::FlowJob;
use crate::johnson::JobClass;

/// Makespan of processing `jobs` in `order` where job `j` cannot start
/// its compute stage before `releases[j]`.
pub fn makespan_with_releases(jobs: &[FlowJob], order: &[usize], releases: &[f64]) -> f64 {
    assert_eq!(jobs.len(), releases.len(), "one release per job");
    let mut m1 = 0.0f64;
    let mut m2 = 0.0f64;
    let mut last = 0.0f64;
    for &idx in order {
        let j = &jobs[idx];
        let start = m1.max(releases[idx]);
        m1 = start + j.compute_ms;
        let mut done = m1;
        if j.comm_ms > 0.0 {
            m2 = m1.max(m2) + j.comm_ms;
            done = m2;
        }
        last = last.max(done);
    }
    last
}

/// Johnson priority key: comm-heavy ascending-`f` first, then
/// compute-heavy descending-`g` (smaller key = earlier).
fn johnson_key(job: &FlowJob) -> (u8, f64) {
    match crate::johnson::classify(job) {
        JobClass::CommHeavy => (0, job.compute_ms),
        JobClass::ComputeHeavy => (1, -job.comm_ms),
    }
}

/// List scheduling with Johnson priorities under release dates: at each
/// decision instant, start the best-priority released job; if none is
/// released, idle until the next release.
pub fn list_schedule_with_releases(jobs: &[FlowJob], releases: &[f64]) -> Vec<usize> {
    assert_eq!(jobs.len(), releases.len(), "one release per job");
    let n = jobs.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut clock = 0.0f64;
    while !remaining.is_empty() {
        let released: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&j| releases[j] <= clock + 1e-12)
            .collect();
        let pick = if released.is_empty() {
            // Jump to the earliest upcoming release.
            let next = remaining
                .iter()
                .copied()
                .min_by(|&a, &b| releases[a].total_cmp(&releases[b]))
                .expect("remaining non-empty");
            clock = releases[next];
            next
        } else {
            released
                .into_iter()
                .min_by(|&a, &b| {
                    let (ca, ka) = johnson_key(&jobs[a]);
                    let (cb, kb) = johnson_key(&jobs[b]);
                    ca.cmp(&cb).then(ka.total_cmp(&kb)).then(a.cmp(&b))
                })
                .expect("released non-empty")
        };
        clock = clock.max(releases[pick]) + jobs[pick].compute_ms;
        remaining.retain(|&j| j != pick);
        order.push(pick);
    }
    order
}

/// Exhaustive optimum under releases (≤ 9 jobs), for validation.
pub fn best_order_with_releases(jobs: &[FlowJob], releases: &[f64]) -> (Vec<usize>, f64) {
    assert!(jobs.len() <= 9, "release brute force capped at 9 jobs");
    let n = jobs.len();
    if n == 0 {
        return (vec![], 0.0);
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = perm.clone();
    let mut best_span = makespan_with_releases(jobs, &perm, releases);
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let span = makespan_with_releases(jobs, &perm, releases);
            if span < best_span {
                best_span = span;
                best.copy_from_slice(&perm);
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best, best_span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::johnson::johnson_order;
    use crate::makespan::makespan;

    fn jobs(spec: &[(f64, f64)]) -> Vec<FlowJob> {
        spec.iter()
            .enumerate()
            .map(|(i, &(f, g))| FlowJob::two_stage(i, f, g))
            .collect()
    }

    #[test]
    fn zero_releases_reduce_to_plain_makespan() {
        let js = jobs(&[(4.0, 6.0), (7.0, 2.0), (3.0, 3.0)]);
        let releases = vec![0.0; 3];
        let order = johnson_order(&js);
        assert_eq!(
            makespan_with_releases(&js, &order, &releases),
            makespan(&js, &order)
        );
        // List scheduling degenerates to the Johnson order.
        let list = list_schedule_with_releases(&js, &releases);
        assert_eq!(
            makespan_with_releases(&js, &list, &releases),
            makespan(&js, &order)
        );
    }

    #[test]
    fn release_forces_idle() {
        let js = jobs(&[(2.0, 1.0)]);
        assert_eq!(makespan_with_releases(&js, &[0], &[10.0]), 13.0);
    }

    #[test]
    fn list_scheduling_respects_releases() {
        // Job 0 released late; job 1 available immediately.
        let js = jobs(&[(1.0, 5.0), (4.0, 1.0)]);
        let releases = vec![3.0, 0.0];
        let order = list_schedule_with_releases(&js, &releases);
        assert_eq!(order, vec![1, 0]);
        // CPU: job1 0..4, job0 max(4,3)=4..5. Uplink: 4..5 (job1),
        // job0: max(5,5)+5 = 10.
        assert_eq!(makespan_with_releases(&js, &order, &releases), 10.0);
    }

    #[test]
    fn list_scheduling_close_to_optimal() {
        let mut state = 0xABCDu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f64 / 5.0
        };
        let mut worst: f64 = 1.0;
        for _ in 0..40 {
            let js: Vec<FlowJob> = (0..6)
                .map(|i| FlowJob::two_stage(i, rng() + 0.1, rng() + 0.1))
                .collect();
            let releases: Vec<f64> = (0..6).map(|_| rng()).collect();
            let order = list_schedule_with_releases(&js, &releases);
            let heur = makespan_with_releases(&js, &order, &releases);
            let (_, opt) = best_order_with_releases(&js, &releases);
            worst = worst.max(heur / opt);
        }
        assert!(worst < 1.25, "list scheduling ratio {worst}");
    }

    #[test]
    fn periodic_frames_pipeline_naturally() {
        // 30 fps camera, each frame (10 ms compute, 12 ms upload):
        // releases every 33 ms mean no queueing at all.
        let js: Vec<FlowJob> = (0..5).map(|i| FlowJob::two_stage(i, 10.0, 12.0)).collect();
        let releases: Vec<f64> = (0..5).map(|i| i as f64 * 33.0).collect();
        let order = list_schedule_with_releases(&js, &releases);
        let span = makespan_with_releases(&js, &order, &releases);
        // Last frame at t = 132, finishes at 132 + 22.
        assert_eq!(span, 154.0);
    }

    #[test]
    fn saturated_source_matches_batch_behaviour() {
        // Releases far faster than service: converges to the batch case
        // plus the first release offset.
        let js = jobs(&[(4.0, 6.0), (7.0, 2.0)]);
        let releases = vec![0.0, 0.001];
        let order = list_schedule_with_releases(&js, &releases);
        let span = makespan_with_releases(&js, &order, &releases);
        let batch = makespan(&js, &johnson_order(&js));
        assert!((span - batch).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "one release per job")]
    fn mismatched_lengths_rejected() {
        let js = jobs(&[(1.0, 1.0)]);
        makespan_with_releases(&js, &[0], &[]);
    }
}
