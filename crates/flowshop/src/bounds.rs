//! Lower bounds for the two-stage flow shop — cheap optimality oracles
//! used in tests and benches.

use crate::job::FlowJob;

/// Standard machine-based lower bound for `F2 || C_max`:
///
/// `max( Σf + min g⁺,  Σg + min f,  max(f+g) )`
///
/// where `min g⁺` is the smallest *positive* communication time (a
/// local-only job need not touch machine 2, and if every job is local
/// only the bound degenerates to `Σf`).
pub fn two_stage_lower_bound(jobs: &[FlowJob]) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    let sum_f: f64 = jobs.iter().map(|j| j.compute_ms).sum();
    let offloading: Vec<&FlowJob> = jobs.iter().filter(|j| j.comm_ms > 0.0).collect();
    // machine-1 bound: the mobile CPU must execute every compute stage.
    // When every job offloads, whichever job is sequenced last still has
    // its upload ahead of it, adding at least the smallest g. A job with
    // g = 0 can be sequenced last and void that extra term.
    let lb1 = if offloading.len() == jobs.len() {
        let min_g = offloading
            .iter()
            .map(|j| j.comm_ms)
            .fold(f64::INFINITY, f64::min);
        sum_f + min_g
    } else {
        sum_f
    };
    // machine-2 bound: the uplink must carry Σg, and cannot start before
    // the earliest compute finishes.
    let lb2 = if offloading.is_empty() {
        0.0
    } else {
        let sum_g: f64 = offloading.iter().map(|j| j.comm_ms).sum();
        let min_f = jobs
            .iter()
            .filter(|j| j.comm_ms > 0.0)
            .map(|j| j.compute_ms)
            .fold(f64::INFINITY, f64::min);
        sum_g + min_f
    };
    // single-job bound.
    let lb3 = jobs
        .iter()
        .map(|j| j.compute_ms + j.comm_ms)
        .fold(0.0, f64::max);
    lb1.max(lb2).max(lb3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::johnson::johnson_order;
    use crate::makespan::makespan;

    fn jobs(spec: &[(f64, f64)]) -> Vec<FlowJob> {
        spec.iter()
            .enumerate()
            .map(|(i, &(f, g))| FlowJob::two_stage(i, f, g))
            .collect()
    }

    #[test]
    fn bound_below_optimum() {
        let cases = [
            vec![(4.0, 6.0), (7.0, 2.0)],
            vec![(3.0, 6.0), (7.0, 2.0), (4.0, 4.0), (5.0, 3.0), (1.0, 5.0)],
            vec![(5.0, 0.0), (1.0, 9.0)],
        ];
        for spec in cases {
            let js = jobs(&spec);
            let opt = makespan(&js, &johnson_order(&js));
            let lb = two_stage_lower_bound(&js);
            assert!(lb <= opt + 1e-12, "bound {lb} exceeds optimum {opt}");
            assert!(lb > 0.0);
        }
    }

    #[test]
    fn bound_tight_for_balanced_pipeline() {
        // Perfectly pipelined jobs: f = g -> optimum = Σf + g = bound.
        let js = jobs(&[(5.0, 5.0); 4]);
        let opt = makespan(&js, &johnson_order(&js));
        assert_eq!(two_stage_lower_bound(&js), opt);
    }

    #[test]
    fn local_only_set() {
        let js = jobs(&[(5.0, 0.0), (7.0, 0.0)]);
        assert_eq!(two_stage_lower_bound(&js), 12.0);
    }

    #[test]
    fn empty() {
        assert_eq!(two_stage_lower_bound(&[]), 0.0);
    }
}
