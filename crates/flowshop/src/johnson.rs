//! Johnson's rule — the paper's Algorithm 1.
//!
//! Split jobs into the communication-heavy set `S1 = {j : f < g}` and
//! the computation-heavy set `S2 = {j : f ≥ g}`; sort `S1` ascending by
//! `f`, `S2` descending by `g`; concatenate `S1 ‖ S2`. This is Johnson's
//! 1954 rule for `F2 || C_max`, which is optimal for any fixed
//! partition choice.

use crate::job::FlowJob;

/// Which Johnson set a job falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// `f < g`: communication dominates; scheduled early, ascending `f`.
    CommHeavy,
    /// `f ≥ g`: computation dominates; scheduled late, descending `g`.
    ComputeHeavy,
}

/// Classify a job per Alg. 1 line 2.
pub fn classify(job: &FlowJob) -> JobClass {
    if job.is_comm_heavy() {
        JobClass::CommHeavy
    } else {
        JobClass::ComputeHeavy
    }
}

/// The paper's Alg. 1: return the optimal processing order as a
/// permutation of the input slice (indices into `jobs`).
///
/// Ties are broken by job id so the order is deterministic.
///
/// ```
/// use mcdnn_flowshop::{johnson_order, makespan, FlowJob};
///
/// // The paper's Fig. 2 optimum: the communication-heavy job first.
/// let jobs = vec![
///     FlowJob::two_stage(0, 7.0, 2.0), // computation-heavy
///     FlowJob::two_stage(1, 4.0, 6.0), // communication-heavy
/// ];
/// let order = johnson_order(&jobs);
/// assert_eq!(order, vec![1, 0]);
/// assert_eq!(makespan(&jobs, &order), 13.0);
/// ```
pub fn johnson_order(jobs: &[FlowJob]) -> Vec<usize> {
    debug_assert!(jobs.iter().all(FlowJob::is_valid), "invalid job durations");
    let mut s1: Vec<usize> = Vec::new();
    let mut s2: Vec<usize> = Vec::new();
    for (idx, job) in jobs.iter().enumerate() {
        match classify(job) {
            JobClass::CommHeavy => s1.push(idx),
            JobClass::ComputeHeavy => s2.push(idx),
        }
    }
    s1.sort_by(|&a, &b| {
        jobs[a]
            .compute_ms
            .total_cmp(&jobs[b].compute_ms)
            .then(jobs[a].id.cmp(&jobs[b].id))
    });
    s2.sort_by(|&a, &b| {
        jobs[b]
            .comm_ms
            .total_cmp(&jobs[a].comm_ms)
            .then(jobs[a].id.cmp(&jobs[b].id))
    });
    s1.extend(s2);
    s1
}

/// FIFO order (identity permutation) — the "no scheduling" baseline in
/// the ablation benches.
pub fn fifo_order(jobs: &[FlowJob]) -> Vec<usize> {
    (0..jobs.len()).collect()
}

/// Johnson's order reversed — a deliberately adversarial order used to
/// bound how much scheduling can matter.
pub fn reversed_johnson_order(jobs: &[FlowJob]) -> Vec<usize> {
    let mut o = johnson_order(jobs);
    o.reverse();
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::makespan::makespan;

    fn jobs(spec: &[(f64, f64)]) -> Vec<FlowJob> {
        spec.iter()
            .enumerate()
            .map(|(i, &(f, g))| FlowJob::two_stage(i, f, g))
            .collect()
    }

    #[test]
    fn classification() {
        assert_eq!(classify(&FlowJob::two_stage(0, 4.0, 6.0)), JobClass::CommHeavy);
        assert_eq!(
            classify(&FlowJob::two_stage(0, 7.0, 2.0)),
            JobClass::ComputeHeavy
        );
        assert_eq!(
            classify(&FlowJob::two_stage(0, 5.0, 5.0)),
            JobClass::ComputeHeavy
        );
    }

    #[test]
    fn comm_heavy_first_ascending_f() {
        // S1 = {(1,9), (3,8)}, S2 = {(9,2), (7,3)}.
        let js = jobs(&[(9.0, 2.0), (1.0, 9.0), (3.0, 8.0), (7.0, 3.0)]);
        assert_eq!(johnson_order(&js), vec![1, 2, 3, 0]);
    }

    #[test]
    fn deterministic_tie_break() {
        let js = jobs(&[(1.0, 5.0), (1.0, 5.0), (1.0, 5.0)]);
        assert_eq!(johnson_order(&js), vec![0, 1, 2]);
    }

    #[test]
    fn textbook_johnson_instance() {
        // Classic instance: jobs (a, b) = (3,6),(7,2),(4,4),(5,3),(1,5).
        // Johnson: S1={j0(3,6),j4(1,5)} asc a -> [4,0];
        // S2={j1(7,2),j2(4,4),j3(5,3)} desc b -> [2,3,1].
        let js = jobs(&[(3.0, 6.0), (7.0, 2.0), (4.0, 4.0), (5.0, 3.0), (1.0, 5.0)]);
        let order = johnson_order(&js);
        assert_eq!(order, vec![4, 0, 2, 3, 1]);
        // Known optimal makespan for this instance is 22.
        assert_eq!(makespan(&js, &order), 22.0);
    }

    #[test]
    fn johnson_beats_fifo_and_reverse_on_paper_example() {
        // Paper Fig. 2 middle case: jobs cut at (l1, l2):
        // job A (4, 6) comm-heavy, job B (7, 2) compute-heavy.
        let js = jobs(&[(7.0, 2.0), (4.0, 6.0)]);
        let j = johnson_order(&js);
        assert_eq!(j, vec![1, 0]);
        assert_eq!(makespan(&js, &j), 13.0); // the paper's optimal 13
        assert_eq!(makespan(&js, &fifo_order(&js)), 17.0);
        assert_eq!(makespan(&js, &reversed_johnson_order(&js)), 17.0);
    }

    #[test]
    fn empty_and_single() {
        assert!(johnson_order(&[]).is_empty());
        let js = jobs(&[(5.0, 1.0)]);
        assert_eq!(johnson_order(&js), vec![0]);
    }

    #[test]
    fn exchange_argument_never_improved_by_adjacent_swap() {
        // Johnson optimality sanity: swapping any adjacent pair in the
        // Johnson order never reduces the makespan.
        let js = jobs(&[
            (3.0, 9.0),
            (8.0, 1.0),
            (5.0, 5.0),
            (2.0, 2.0),
            (6.0, 8.0),
            (1.0, 4.0),
        ]);
        let order = johnson_order(&js);
        let base = makespan(&js, &order);
        for i in 0..order.len() - 1 {
            let mut swapped = order.clone();
            swapped.swap(i, i + 1);
            assert!(
                makespan(&js, &swapped) >= base - 1e-12,
                "swap at {i} improved the makespan"
            );
        }
    }
}
