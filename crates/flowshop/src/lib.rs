//! # mcdnn-flowshop
//!
//! Two-stage flow shop machinery underlying the paper's scheduling
//! results (§4): after partitioning, each DNN inference job is a
//! two-stage job — mobile computation `f(P_j)` on machine 1 (the mobile
//! CPU), then offload `g(P_j)` on machine 2 (the uplink) — and
//! minimising the makespan of `n` such jobs is the classic `F2 || C_max`
//! problem, solved exactly by Johnson's rule (Alg. 1).
//!
//! Provided here, independent of any DNN notions:
//!
//! * [`job::FlowJob`] — a two-(or three-)stage job.
//! * [`johnson`] — the paper's Alg. 1 (Johnson's rule), plus FIFO and
//!   reversed orders for the scheduling ablation.
//! * [`mod@makespan`] — exact schedule evaluation by recurrence, Gantt
//!   traces, average completion times, and the closed form of
//!   Proposition 4.1.
//! * [`bruteforce`] — exhaustive permutation search (the paper's BF
//!   baseline) for small `n`.
//! * [`bounds`] — standard `F2` lower bounds used as sanity oracles.
//! * [`kernels`] — closed-form O(1) makespan kernels for homogeneous
//!   job blocks, the planner's hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod flowtime;
pub mod bruteforce;
pub mod job;
pub mod johnson;
pub mod kernels;
pub mod makespan;
pub mod release;
pub mod three;

pub use bounds::two_stage_lower_bound;
pub use bruteforce::{best_permutation, BruteForceResult};
pub use flowtime::{flowtime_order, spt_order, total_flowtime};
pub use job::FlowJob;
pub use johnson::{johnson_order, JobClass};
pub use kernels::{
    johnson_blocks_makespan, two_type_mix_makespan, uniform_makespan, PipelineState,
};
pub use makespan::{
    average_completion_ms, gantt, makespan, makespan_closed_form, makespan_three_stage, Gantt,
    StageInterval,
};
pub use release::{list_schedule_with_releases, makespan_with_releases};
pub use three::{cds_order, johnson_case_applies, neh_order, three_stage_order};
