//! Three-stage flow shop (`F3 || C_max`) — the regime where the
//! paper's "cloud time is negligible" reduction does *not* apply, e.g.
//! offloading to a loaded edge server instead of a datacenter GPU.
//!
//! `F3 || C_max` is NP-hard in general, but:
//!
//! * **Johnson's special case**: when the middle machine is dominated
//!   (`min f ≥ max g` or `min cloud ≥ max g`), scheduling by Johnson's
//!   rule on the surrogate two-stage jobs `(f + g, g + cloud)` is
//!   provably optimal (Johnson 1954).
//! * **CDS heuristic** (Campbell–Dudek–Smith): try both natural
//!   two-stage surrogates — `(f, cloud)` and `(f + g, g + cloud)` —
//!   and keep the better Johnson order.
//! * **NEH heuristic** (Nawaz–Enscore–Ham): insert jobs in decreasing
//!   total-work order, each at its best position. The strongest
//!   classical constructive heuristic for permutation flow shops.
//!
//! [`three_stage_order`] runs all of the above and returns the best.

use crate::job::FlowJob;
use crate::johnson::johnson_order;
use crate::makespan::makespan_three_stage;

/// True when Johnson's three-machine special case applies (middle
/// machine dominated), making [`johnson_surrogate_order`] optimal.
pub fn johnson_case_applies(jobs: &[FlowJob]) -> bool {
    if jobs.is_empty() {
        return true;
    }
    let min_f = jobs.iter().map(|j| j.compute_ms).fold(f64::INFINITY, f64::min);
    let min_c = jobs.iter().map(|j| j.cloud_ms).fold(f64::INFINITY, f64::min);
    let max_g = jobs.iter().map(|j| j.comm_ms).fold(0.0, f64::max);
    min_f >= max_g || min_c >= max_g
}

/// Johnson order on the `(f + g, g + cloud)` surrogate jobs — optimal
/// when [`johnson_case_applies`].
pub fn johnson_surrogate_order(jobs: &[FlowJob]) -> Vec<usize> {
    let surrogate: Vec<FlowJob> = jobs
        .iter()
        .map(|j| FlowJob::two_stage(j.id, j.compute_ms + j.comm_ms, j.comm_ms + j.cloud_ms))
        .collect();
    johnson_order(&surrogate)
}

/// CDS heuristic: best of the two surrogate Johnson orders.
pub fn cds_order(jobs: &[FlowJob]) -> Vec<usize> {
    let s1: Vec<FlowJob> = jobs
        .iter()
        .map(|j| FlowJob::two_stage(j.id, j.compute_ms, j.cloud_ms))
        .collect();
    let o1 = johnson_order(&s1);
    let o2 = johnson_surrogate_order(jobs);
    if makespan_three_stage(jobs, &o1) <= makespan_three_stage(jobs, &o2) {
        o1
    } else {
        o2
    }
}

/// NEH heuristic: jobs sorted by decreasing total work, inserted one by
/// one at the makespan-minimising position. `O(n³)` with the plain
/// evaluation used here — fine at this problem's scale.
pub fn neh_order(jobs: &[FlowJob]) -> Vec<usize> {
    let mut by_work: Vec<usize> = (0..jobs.len()).collect();
    by_work.sort_by(|&a, &b| {
        let wa = jobs[a].compute_ms + jobs[a].comm_ms + jobs[a].cloud_ms;
        let wb = jobs[b].compute_ms + jobs[b].comm_ms + jobs[b].cloud_ms;
        wb.total_cmp(&wa).then(a.cmp(&b))
    });
    let mut order: Vec<usize> = Vec::with_capacity(jobs.len());
    for &j in &by_work {
        let mut best_pos = 0;
        let mut best_span = f64::INFINITY;
        for pos in 0..=order.len() {
            order.insert(pos, j);
            let span = makespan_three_stage(jobs, &order);
            if span < best_span {
                best_span = span;
                best_pos = pos;
            }
            order.remove(pos);
        }
        order.insert(best_pos, j);
    }
    order
}

/// Best order across Johnson-surrogate, CDS and NEH (by 3-stage
/// makespan). Exact in Johnson's special case; a strong heuristic
/// otherwise.
pub fn three_stage_order(jobs: &[FlowJob]) -> Vec<usize> {
    let candidates = [johnson_surrogate_order(jobs), cds_order(jobs), neh_order(jobs)];
    candidates
        .into_iter()
        .min_by(|a, b| {
            makespan_three_stage(jobs, a).total_cmp(&makespan_three_stage(jobs, b))
        })
        .expect("three candidates")
}

/// Exhaustive optimum for small instances (≤ 10 jobs), for validation.
pub fn best_three_stage_permutation(jobs: &[FlowJob]) -> (Vec<usize>, f64) {
    assert!(jobs.len() <= 10, "3-stage brute force capped at 10 jobs");
    let n = jobs.len();
    if n == 0 {
        return (vec![], 0.0);
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = perm.clone();
    let mut best_span = makespan_three_stage(jobs, &perm);
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let span = makespan_three_stage(jobs, &perm);
            if span < best_span {
                best_span = span;
                best.copy_from_slice(&perm);
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best, best_span)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs3(spec: &[(f64, f64, f64)]) -> Vec<FlowJob> {
        spec.iter()
            .enumerate()
            .map(|(i, &(a, b, c))| FlowJob::three_stage(i, a, b, c))
            .collect()
    }

    #[test]
    fn johnson_case_detection() {
        // Middle machine dominated by machine 1.
        let js = jobs3(&[(10.0, 2.0, 5.0), (12.0, 1.0, 3.0)]);
        assert!(johnson_case_applies(&js));
        // Middle machine dominant: not the special case.
        let js2 = jobs3(&[(1.0, 20.0, 1.0), (2.0, 15.0, 2.0)]);
        assert!(!johnson_case_applies(&js2));
    }

    #[test]
    fn johnson_special_case_is_optimal() {
        let cases = [
            jobs3(&[(10.0, 2.0, 5.0), (12.0, 1.0, 3.0), (11.0, 2.0, 9.0)]),
            jobs3(&[(8.0, 3.0, 7.0), (9.0, 1.0, 4.0), (10.0, 2.0, 10.0), (8.5, 0.5, 2.0)]),
        ];
        for js in cases {
            assert!(johnson_case_applies(&js));
            let order = johnson_surrogate_order(&js);
            let (_, opt) = best_three_stage_permutation(&js);
            assert!(
                (makespan_three_stage(&js, &order) - opt).abs() < 1e-9,
                "special case must be exact"
            );
        }
    }

    #[test]
    fn heuristics_close_to_optimal_on_random_instances() {
        // Deterministic pseudo-random 3-stage instances.
        let mut state = 0xC0FFEEu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 50.0
        };
        let mut worst: f64 = 1.0;
        for _ in 0..30 {
            let js: Vec<FlowJob> = (0..7)
                .map(|i| FlowJob::three_stage(i, rng(), rng(), rng()))
                .collect();
            let order = three_stage_order(&js);
            let heur = makespan_three_stage(&js, &order);
            let (_, opt) = best_three_stage_permutation(&js);
            worst = worst.max(heur / opt);
        }
        assert!(worst < 1.05, "combined heuristic ratio {worst}");
    }

    #[test]
    fn neh_handles_edge_cases() {
        assert!(neh_order(&[]).is_empty());
        let one = jobs3(&[(1.0, 2.0, 3.0)]);
        assert_eq!(neh_order(&one), vec![0]);
    }

    #[test]
    fn three_stage_reduces_to_two_stage_when_cloud_zero() {
        // With cloud = 0 the surrogate order must match plain Johnson's
        // makespan (orders may differ; makespans must not).
        let js = jobs3(&[(4.0, 6.0, 0.0), (7.0, 2.0, 0.0), (3.0, 3.0, 0.0)]);
        let o3 = three_stage_order(&js);
        let o2 = johnson_order(&js);
        assert!(
            (makespan_three_stage(&js, &o3) - makespan_three_stage(&js, &o2)).abs() < 1e-9
        );
    }

    #[test]
    fn cds_never_worse_than_its_surrogates_alone() {
        let js = jobs3(&[(5.0, 9.0, 2.0), (3.0, 4.0, 8.0), (7.0, 1.0, 5.0)]);
        let cds = makespan_three_stage(&js, &cds_order(&js));
        let sur = makespan_three_stage(&js, &johnson_surrogate_order(&js));
        assert!(cds <= sur + 1e-9);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn brute_force_guard() {
        let js = jobs3(&[(1.0, 1.0, 1.0); 11]);
        best_three_stage_permutation(&js);
    }
}
