//! Exhaustive permutation search — the paper's BF scheduling baseline.
//!
//! For `F2 || C_max` a permutation schedule is optimal, so enumerating
//! all `n!` orders gives the true optimum. Feasible only for small `n`;
//! used to validate Johnson's rule and (in the partition crate) the
//! joint partition+schedule optimum.

use crate::job::FlowJob;
use crate::makespan::makespan;

/// Result of a brute-force search.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceResult {
    /// An optimal processing order (indices into the job slice).
    pub order: Vec<usize>,
    /// Its makespan.
    pub makespan: f64,
    /// Number of permutations evaluated.
    pub evaluated: usize,
}

/// Hard cap on `n` — 10! = 3.6 M permutations is the practical limit.
pub const MAX_BRUTE_FORCE_JOBS: usize = 10;

/// Find the optimal order by trying every permutation.
///
/// Panics when `jobs.len() > MAX_BRUTE_FORCE_JOBS`.
pub fn best_permutation(jobs: &[FlowJob]) -> BruteForceResult {
    assert!(
        jobs.len() <= MAX_BRUTE_FORCE_JOBS,
        "brute force capped at {MAX_BRUTE_FORCE_JOBS} jobs, got {}",
        jobs.len()
    );
    let n = jobs.len();
    if n == 0 {
        return BruteForceResult {
            order: vec![],
            makespan: 0.0,
            evaluated: 0,
        };
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = perm.clone();
    let mut best_span = makespan(jobs, &perm);
    let mut evaluated = 1usize;
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let span = makespan(jobs, &perm);
            evaluated += 1;
            if span < best_span {
                best_span = span;
                best.copy_from_slice(&perm);
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    BruteForceResult {
        order: best,
        makespan: best_span,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::johnson::johnson_order;

    fn jobs(spec: &[(f64, f64)]) -> Vec<FlowJob> {
        spec.iter()
            .enumerate()
            .map(|(i, &(f, g))| FlowJob::two_stage(i, f, g))
            .collect()
    }

    #[test]
    fn evaluates_all_permutations() {
        let js = jobs(&[(1.0, 2.0), (3.0, 4.0), (5.0, 6.0), (7.0, 8.0)]);
        let r = best_permutation(&js);
        assert_eq!(r.evaluated, 24);
    }

    #[test]
    fn johnson_matches_brute_force() {
        // Johnson's rule is provably optimal; brute force must agree.
        let cases: Vec<Vec<FlowJob>> = vec![
            jobs(&[(4.0, 6.0), (7.0, 2.0)]),
            jobs(&[(3.0, 6.0), (7.0, 2.0), (4.0, 4.0), (5.0, 3.0), (1.0, 5.0)]),
            jobs(&[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]),
            jobs(&[(9.0, 1.0), (9.0, 1.0), (1.0, 9.0), (1.0, 9.0)]),
            jobs(&[(5.0, 0.0), (0.0, 5.0), (2.5, 2.5)]),
        ];
        for js in cases {
            let bf = best_permutation(&js);
            let j = crate::makespan::makespan(&js, &johnson_order(&js));
            assert!(
                (bf.makespan - j).abs() < 1e-9,
                "BF {} vs Johnson {} on {js:?}",
                bf.makespan,
                j
            );
        }
    }

    #[test]
    fn empty_input() {
        let r = best_permutation(&[]);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.evaluated, 0);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn too_many_jobs_panics() {
        let js = jobs(&[(1.0, 1.0); 11]);
        best_permutation(&js);
    }
}
