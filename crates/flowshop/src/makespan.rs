//! Exact schedule evaluation: recurrences, Gantt traces and the closed
//! form of the paper's Proposition 4.1.

use crate::job::FlowJob;

/// One machine-occupancy interval in a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageInterval {
    /// Job id (from [`FlowJob::id`]).
    pub job: usize,
    /// Stage index: 0 = mobile compute, 1 = communication, 2 = cloud.
    pub stage: usize,
    /// Start time in ms.
    pub start: f64,
    /// End time in ms.
    pub end: f64,
}

/// A full schedule trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Gantt {
    /// All stage intervals, grouped by job in processing order.
    pub intervals: Vec<StageInterval>,
}

impl Gantt {
    /// Schedule makespan (latest interval end; 0 for an empty schedule).
    pub fn makespan(&self) -> f64 {
        self.intervals.iter().map(|i| i.end).fold(0.0, f64::max)
    }

    /// Completion time of each job id present in the trace.
    pub fn completion_times(&self) -> Vec<(usize, f64)> {
        let mut done: Vec<(usize, f64)> = Vec::new();
        for iv in &self.intervals {
            match done.iter_mut().find(|(id, _)| *id == iv.job) {
                Some((_, t)) => *t = t.max(iv.end),
                None => done.push((iv.job, iv.end)),
            }
        }
        done
    }

    /// Total idle time on a machine between its first and last busy
    /// instant.
    pub fn idle_time(&self, stage: usize) -> f64 {
        let mut spans: Vec<(f64, f64)> = self
            .intervals
            .iter()
            .filter(|iv| iv.stage == stage && iv.end > iv.start)
            .map(|iv| (iv.start, iv.end))
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut idle = 0.0;
        for w in spans.windows(2) {
            idle += (w[1].0 - w[0].1).max(0.0);
        }
        idle
    }

    /// Render the schedule as a standalone SVG document (one lane per
    /// stage, one rectangle per interval), for reports and docs.
    pub fn to_svg(&self, width: u32, lane_height: u32) -> String {
        use std::fmt::Write as _;
        let total = self.makespan();
        let stages = 1 + self.intervals.iter().map(|i| i.stage).max().unwrap_or(0);
        let label_w = 64u32;
        let height = stages as u32 * (lane_height + 6) + 24;
        let mut out = String::new();
        let _ = write!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{height}\" \
             viewBox=\"0 0 {w} {height}\">",
            w = width + label_w + 8
        );
        let names = ["compute", "uplink", "cloud"];
        let palette = [
            "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1",
            "#ff9da7",
        ];
        for s in 0..stages {
            let y = s as u32 * (lane_height + 6) + 4;
            let _ = write!(
                out,
                "<text x=\"2\" y=\"{ty}\" font-size=\"11\" font-family=\"monospace\">{name}</text>",
                ty = y + lane_height / 2 + 4,
                name = names.get(s).copied().unwrap_or("stage"),
            );
            let _ = write!(
                out,
                "<rect x=\"{label_w}\" y=\"{y}\" width=\"{width}\" height=\"{lane_height}\" \
                 fill=\"#f4f4f4\" stroke=\"#ccc\"/>"
            );
        }
        if total > 0.0 {
            for iv in &self.intervals {
                let x = label_w as f64 + iv.start / total * width as f64;
                let w = ((iv.end - iv.start) / total * width as f64).max(0.5);
                let y = iv.stage as u32 * (lane_height + 6) + 4;
                let color = palette[iv.job % palette.len()];
                let _ = write!(
                    out,
                    "<rect x=\"{x:.2}\" y=\"{y}\" width=\"{w:.2}\" height=\"{lane_height}\" \
                     fill=\"{color}\" stroke=\"#333\" stroke-width=\"0.5\">\
                     <title>job {job} stage {stage}: {s:.2}..{e:.2} ms</title></rect>",
                    job = iv.job,
                    stage = iv.stage,
                    s = iv.start,
                    e = iv.end,
                );
            }
            let _ = write!(
                out,
                "<text x=\"{label_w}\" y=\"{ty}\" font-size=\"10\" font-family=\"monospace\">0</text>\
                 <text x=\"{tx}\" y=\"{ty}\" font-size=\"10\" font-family=\"monospace\" \
                 text-anchor=\"end\">{total:.1} ms</text>",
                ty = height - 6,
                tx = label_w + width,
            );
        }
        out.push_str("</svg>");
        out
    }

    /// Render a compact ASCII Gantt chart (one row per stage), for
    /// examples and debugging.
    pub fn to_ascii(&self, width: usize) -> String {
        let total = self.makespan();
        if total <= 0.0 || self.intervals.is_empty() {
            return String::from("(empty schedule)\n");
        }
        let stages = 1 + self.intervals.iter().map(|i| i.stage).max().unwrap_or(0);
        let names = ["comp ", "comm ", "cloud"];
        let mut out = String::new();
        for s in 0..stages {
            let mut row = vec![b'.'; width];
            for iv in self.intervals.iter().filter(|iv| iv.stage == s) {
                let a = ((iv.start / total) * width as f64).floor() as usize;
                let b = (((iv.end / total) * width as f64).ceil() as usize).min(width);
                let ch = char::from(b'A' + (iv.job % 26) as u8) as u8;
                for cell in row.iter_mut().take(b).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            out.push_str(names.get(s).unwrap_or(&"stage"));
            out.push('|');
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push_str("|\n");
        }
        out
    }
}

/// Makespan of processing `jobs` in the given `order` on the two-stage
/// pipeline (standard permutation flow-shop recurrence).
///
/// Jobs with `comm_ms == 0` (local-only) never visit machine 2.
pub fn makespan(jobs: &[FlowJob], order: &[usize]) -> f64 {
    let (c1, c2) = fold_two_stage(jobs, order);
    c1.max(c2)
}

/// Two-stage recurrence returning final completion of each machine.
fn fold_two_stage(jobs: &[FlowJob], order: &[usize]) -> (f64, f64) {
    let mut m1 = 0.0f64; // mobile CPU available at
    let mut m2 = 0.0f64; // uplink available at
    for &idx in order {
        let j = &jobs[idx];
        m1 += j.compute_ms;
        if j.comm_ms > 0.0 {
            m2 = m1.max(m2) + j.comm_ms;
        }
    }
    (m1, m2)
}

/// Makespan including a third (cloud) stage, with the cloud machine
/// also unit-capacity (conservative; a multi-core cloud only lowers it).
pub fn makespan_three_stage(jobs: &[FlowJob], order: &[usize]) -> f64 {
    let mut m1 = 0.0f64;
    let mut m2 = 0.0f64;
    let mut m3 = 0.0f64;
    let mut last = 0.0f64;
    for &idx in order {
        let j = &jobs[idx];
        m1 += j.compute_ms;
        let mut done = m1;
        if j.comm_ms > 0.0 {
            m2 = m1.max(m2) + j.comm_ms;
            done = m2;
            if j.cloud_ms > 0.0 {
                m3 = m2.max(m3) + j.cloud_ms;
                done = m3;
            }
        }
        last = last.max(done);
    }
    last
}

/// Full Gantt trace of the two-stage schedule (plus cloud stage when
/// any job carries one).
pub fn gantt(jobs: &[FlowJob], order: &[usize]) -> Gantt {
    let mut m1 = 0.0f64;
    let mut m2 = 0.0f64;
    let mut m3 = 0.0f64;
    let mut intervals = Vec::with_capacity(order.len() * 2);
    for &idx in order {
        let j = &jobs[idx];
        let s1 = m1;
        m1 += j.compute_ms;
        intervals.push(StageInterval {
            job: j.id,
            stage: 0,
            start: s1,
            end: m1,
        });
        if j.comm_ms > 0.0 {
            let s2 = m1.max(m2);
            m2 = s2 + j.comm_ms;
            intervals.push(StageInterval {
                job: j.id,
                stage: 1,
                start: s2,
                end: m2,
            });
            if j.cloud_ms > 0.0 {
                let s3 = m2.max(m3);
                m3 = s3 + j.cloud_ms;
                intervals.push(StageInterval {
                    job: j.id,
                    stage: 2,
                    start: s3,
                    end: m3,
                });
            }
        }
    }
    Gantt { intervals }
}

/// Average completion time (mean of per-job completions) of the
/// schedule. The paper reports this for its 100-job runs (§6.3).
pub fn average_completion_ms(jobs: &[FlowJob], order: &[usize]) -> f64 {
    if order.is_empty() {
        return 0.0;
    }
    let g = gantt(jobs, order);
    let c = g.completion_times();
    c.iter().map(|(_, t)| t).sum::<f64>() / c.len() as f64
}

/// Proposition 4.1 closed form:
/// `C_max = f(x₁) + max(Σ_{i≥2} f(xᵢ), Σ_{i≤n−1} g(xᵢ)) + g(xₙ)`,
/// i.e. `max(Σf + g(xₙ), f(x₁) + Σg)`.
///
/// The true `F2` makespan is `max_j (Σ_{i≤j} f + Σ_{i≥j} g)` over *all*
/// critical positions `j`; the proposition keeps only `j = 1` and
/// `j = n`, so this is a **lower bound** in general, exact when the
/// critical job sits at either end of the order. That holds for the
/// schedules the paper builds — Johnson-ordered mixes of (at most) two
/// partition types around the balanced crossing, where concatenating
/// the sorted `S2` after `S1` idles only one resource. For wildly
/// heterogeneous job sets in Johnson order the formula can
/// underestimate (an implicit precondition Proposition 4.1 does not
/// state; see `tests/theory.rs` for the counterexample). Use
/// [`makespan`] for exact evaluation.
///
/// Returns `None` for an empty order.
pub fn makespan_closed_form(jobs: &[FlowJob], order: &[usize]) -> Option<f64> {
    let (&first, _) = order.split_first()?;
    let &last = order.last()?;
    let f1 = jobs[first].compute_ms;
    let gn = jobs[last].comm_ms;
    let sum_f_rest: f64 = order[1..].iter().map(|&i| jobs[i].compute_ms).sum();
    let sum_g_front: f64 = order[..order.len() - 1]
        .iter()
        .map(|&i| jobs[i].comm_ms)
        .sum();
    Some(f1 + sum_f_rest.max(sum_g_front) + gn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::johnson::johnson_order;

    fn jobs(spec: &[(f64, f64)]) -> Vec<FlowJob> {
        spec.iter()
            .enumerate()
            .map(|(i, &(f, g))| FlowJob::two_stage(i, f, g))
            .collect()
    }

    #[test]
    fn single_job() {
        let js = jobs(&[(4.0, 6.0)]);
        assert_eq!(makespan(&js, &[0]), 10.0);
    }

    #[test]
    fn paper_fig2_cases() {
        // Fig. 2, two jobs, cuts (l1, l1): both (4, 6) -> makespan 16.
        let both_l1 = jobs(&[(4.0, 6.0), (4.0, 6.0)]);
        let o = johnson_order(&both_l1);
        assert_eq!(makespan(&both_l1, &o), 16.0);
        // Cuts (l2, l2): both (7, 2) -> makespan 16.
        let both_l2 = jobs(&[(7.0, 2.0), (7.0, 2.0)]);
        let o = johnson_order(&both_l2);
        assert_eq!(makespan(&both_l2, &o), 16.0);
        // Mixed cuts (l1, l2): (4,6) and (7,2) -> optimal 13.
        let mixed = jobs(&[(4.0, 6.0), (7.0, 2.0)]);
        let o = johnson_order(&mixed);
        assert_eq!(makespan(&mixed, &o), 13.0);
    }

    #[test]
    fn fig2_flip_when_7_becomes_5() {
        // The paper: changing f(l2)=7 to 5 makes common cuts optimal.
        // Mixed: (4,6) + (5,2): Johnson order [0,1]: m1=4, m2=10; m1=9,
        // m2=max(9,10)+2=12.
        let mixed = jobs(&[(4.0, 6.0), (5.0, 2.0)]);
        assert_eq!(makespan(&mixed, &johnson_order(&mixed)), 12.0);
        // Both at l1: (4,6)x2 -> 16. Both at l2: (5,2)x2 -> 12.
        let both_l2 = jobs(&[(5.0, 2.0), (5.0, 2.0)]);
        assert_eq!(makespan(&both_l2, &johnson_order(&both_l2)), 12.0);
        // The flip: with f(l2) = 7 mixed cuts were STRICTLY better than
        // any common cut (13 < 16); with f(l2) = 5 a common cut is
        // optimal again (ties mixed at 12).
        let both_l1 = jobs(&[(4.0, 6.0), (4.0, 6.0)]);
        let common_best = makespan(&both_l1, &johnson_order(&both_l1))
            .min(makespan(&both_l2, &johnson_order(&both_l2)));
        assert!(common_best <= makespan(&mixed, &johnson_order(&mixed)));
    }

    #[test]
    fn local_only_jobs_skip_machine_two() {
        // comm == 0 must not serialize behind earlier uploads.
        let js = jobs(&[(2.0, 50.0), (10.0, 0.0)]);
        // Order [0, 1]: m1 = 12, m2 = 52; job 1 finishes at 12.
        assert_eq!(makespan(&js, &[0, 1]), 52.0);
        let g = gantt(&js, &[0, 1]);
        let c = g.completion_times();
        assert!(c.contains(&(1, 12.0)));
    }

    #[test]
    fn closed_form_matches_recurrence_in_johnson_order() {
        let js = jobs(&[
            (3.0, 9.0),
            (8.0, 1.0),
            (5.0, 5.0),
            (2.0, 2.0),
            (6.0, 8.0),
            (1.0, 4.0),
        ]);
        let order = johnson_order(&js);
        let rec = makespan(&js, &order);
        let cf = makespan_closed_form(&js, &order).unwrap();
        assert!((rec - cf).abs() < 1e-9, "recurrence {rec} vs closed form {cf}");
    }

    #[test]
    fn closed_form_none_on_empty() {
        assert_eq!(makespan_closed_form(&[], &[]), None);
    }

    #[test]
    fn three_stage_reduces_to_two_when_cloud_zero() {
        let js = jobs(&[(3.0, 9.0), (8.0, 1.0), (5.0, 5.0)]);
        let order = johnson_order(&js);
        assert_eq!(makespan(&js, &order), makespan_three_stage(&js, &order));
    }

    #[test]
    fn three_stage_adds_cloud_tail() {
        let js = vec![
            FlowJob::three_stage(0, 2.0, 3.0, 4.0),
            FlowJob::three_stage(1, 2.0, 3.0, 4.0),
        ];
        // m1: 2,4. m2: 5, 8. m3: 9, 13.
        assert_eq!(makespan_three_stage(&js, &[0, 1]), 13.0);
    }

    #[test]
    fn gantt_consistency() {
        let js = jobs(&[(4.0, 6.0), (7.0, 2.0), (1.0, 1.0)]);
        let order = johnson_order(&js);
        let g = gantt(&js, &order);
        assert!((g.makespan() - makespan(&js, &order)).abs() < 1e-12);
        // Machine exclusivity: intervals on one stage never overlap.
        for stage in 0..2 {
            let mut spans: Vec<(f64, f64)> = g
                .intervals
                .iter()
                .filter(|iv| iv.stage == stage)
                .map(|iv| (iv.start, iv.end))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-12, "overlap on stage {stage}");
            }
        }
        // Precedence: each job's comm starts after its compute ends.
        for (id, _) in g.completion_times() {
            let comp = g
                .intervals
                .iter()
                .find(|iv| iv.job == id && iv.stage == 0)
                .unwrap();
            if let Some(comm) = g.intervals.iter().find(|iv| iv.job == id && iv.stage == 1)
            {
                assert!(comm.start >= comp.end - 1e-12);
            }
        }
    }

    #[test]
    fn idle_time_measured() {
        // Job 0 (1, 10), job 1 (5, 1): comm idles waiting nothing, but
        // machine 2 between end of job0 comm (11) and start of job1 comm
        // (max(6, 11) = 11) has no gap; machine 1 has no gap by
        // construction.
        let js = jobs(&[(1.0, 10.0), (5.0, 1.0)]);
        let g = gantt(&js, &[0, 1]);
        assert_eq!(g.idle_time(0), 0.0);
        assert_eq!(g.idle_time(1), 0.0);
        // Now jobs (5, 1) then (1, 10): machine 2 idles 6..6? m2: job0
        // comm 5..6; job1 comp 5..6, comm 6..16 -> no idle. Make a real
        // gap: (1, 2) then (10, 1): comm0 1..3, comm1 11..12 -> idle 8.
        let js2 = jobs(&[(1.0, 2.0), (10.0, 1.0)]);
        let g2 = gantt(&js2, &[0, 1]);
        assert!((g2.idle_time(1) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn average_completion_below_makespan() {
        let js = jobs(&[(4.0, 6.0), (7.0, 2.0), (3.0, 3.0)]);
        let order = johnson_order(&js);
        let avg = average_completion_ms(&js, &order);
        assert!(avg > 0.0 && avg <= makespan(&js, &order));
    }

    #[test]
    fn svg_gantt_renders() {
        let js = jobs(&[(4.0, 6.0), (7.0, 2.0)]);
        let g = gantt(&js, &johnson_order(&js));
        let svg = g.to_svg(400, 18);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Two lanes (compute, uplink) + 4 job rectangles.
        assert_eq!(svg.matches("<title>job").count(), 4);
        assert!(svg.contains("compute"));
        assert!(svg.contains("uplink"));
        assert!(svg.contains("13.0 ms"));
        // Empty schedule still yields a valid document.
        let empty = Gantt::default().to_svg(100, 10);
        assert!(empty.starts_with("<svg") && empty.ends_with("</svg>"));
    }

    #[test]
    fn ascii_gantt_renders() {
        let js = jobs(&[(4.0, 6.0), (7.0, 2.0)]);
        let g = gantt(&js, &johnson_order(&js));
        let art = g.to_ascii(40);
        assert!(art.contains("comp"));
        assert!(art.contains("comm"));
        assert!(art.contains('A'));
        assert!(art.contains('B'));
    }
}
