//! Graphviz DOT export for visual inspection of DNN DAGs.

use std::fmt::Write as _;

use crate::graph::DnnGraph;

/// Render the graph in Graphviz DOT format.
///
/// Nodes are labelled `name\nkind out_shape`; edges are labelled with the
/// communication volume in bytes (the DAG edge weight of the paper).
pub fn to_dot(graph: &DnnGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for (id, node) in graph.iter() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{} {}\"];",
            id.index(),
            node.name,
            node.layer.name(),
            node.output
        );
    }
    for (u, v) in graph.edges() {
        let bytes = graph.node(u).output.bytes(graph.dtype());
        let _ = writeln!(out, "  n{} -> n{} [label=\"{} B\"];", u.index(), v.index(), bytes);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind as L;
    use crate::tensor::TensorShape as S;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = DnnGraph::builder("dotty");
        let i = b.input(S::chw(3, 8, 8));
        b.layer_after(i, L::conv(4, 3, 1, 1));
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"dotty\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains(&format!("{} B", 3 * 8 * 8 * 4)));
        assert!(dot.trim_end().ends_with('}'));
    }
}
