//! Line-structure DNNs (paper Fig. 3(b)).
//!
//! For a line-structure DNN the partition set contains a single
//! cut-point: cutting after layer `l` runs layers `1..=l` on the mobile
//! device and offloads layer `l`'s output tensor. The two stage-cost
//! functions of the paper become unary:
//!
//! * `f(l)` — mobile computation workload up to and including layer `l`
//!   (here measured in FLOPs; the profile crate converts to time),
//! * `g(l)` — offloading volume after layer `l` (here in bytes).
//!
//! Cut index `0` is the *cloud-only* partition (upload the raw input);
//! cut index `k` is the *local-only* partition (no upload at all — the
//! paper treats the result return as negligible and local-only jobs never
//! touch the network).

use crate::error::GraphError;
use crate::graph::{DnnGraph, NodeId};
use crate::layer::LayerKind;

/// A cut position in a line-structure DNN with `k` layers.
///
/// Valid range is `0..=k`: `0` = cloud-only, `k` = local-only, and
/// `l ∈ 1..k` cuts after compute layer `l` (1-based).
pub type CutPoint = usize;

/// One compute layer of a flattened line-structure DNN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineLayer {
    /// Human-readable name (builder name, or joined names for virtual
    /// blocks).
    pub name: String,
    /// FLOPs to execute the layer (block) once.
    pub flops: u64,
    /// Byte size of the layer's output tensor — the offloading volume if
    /// the DNN is cut right after this layer.
    pub out_bytes: usize,
    /// Ids of the original graph nodes this entry covers (one id for a
    /// plain layer, several for a virtual block).
    pub nodes: Vec<NodeId>,
}

/// A line-structure DNN: an ordered list of compute layers plus the
/// input tensor size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineDnn {
    name: String,
    input_bytes: usize,
    layers: Vec<LineLayer>,
}

impl LineDnn {
    /// Build directly from layer data (used by tests and synthetic DNNs).
    pub fn from_parts(
        name: impl Into<String>,
        input_bytes: usize,
        layers: Vec<LineLayer>,
    ) -> Self {
        LineDnn {
            name: name.into(),
            input_bytes,
            layers,
        }
    }

    /// Extract the line representation from a line-structure [`DnnGraph`].
    ///
    /// The graph's `Input` node becomes [`LineDnn::input_bytes`]; every
    /// subsequent node becomes one [`LineLayer`]. Fails with
    /// [`GraphError::NotLineStructure`] when the graph branches.
    pub fn from_graph(graph: &DnnGraph) -> Result<Self, GraphError> {
        Self::from_graph_weighted(graph, |_| 1.0)
    }

    /// [`LineDnn::from_graph`] with per-layer cost weighting: each
    /// layer's FLOPs are multiplied by `weight(&layer)` to give
    /// *effective* FLOPs.
    ///
    /// Real devices do not execute all layer kinds at the same
    /// FLOP rate — depthwise convolutions are memory-bound and run
    /// several times below a dense conv's throughput on CPUs. A weight
    /// above 1 marks a layer as proportionally slower. The default
    /// weight of 1 everywhere recovers the pure FLOP model.
    pub fn from_graph_weighted(
        graph: &DnnGraph,
        weight: impl Fn(&LayerKind) -> f64,
    ) -> Result<Self, GraphError> {
        if let Some(node) = graph.first_branch() {
            return Err(GraphError::NotLineStructure { node });
        }
        if graph.is_empty() {
            return Err(GraphError::Empty);
        }
        let dtype = graph.dtype();
        let mut input_bytes = 0usize;
        let mut layers = Vec::with_capacity(graph.len());
        for (id, node) in graph.iter() {
            if matches!(node.layer, LayerKind::Input { .. }) && id.0 == 0 {
                input_bytes = node.output.bytes(dtype);
                continue;
            }
            let w = weight(&node.layer);
            assert!(w > 0.0 && w.is_finite(), "weights must be positive");
            layers.push(LineLayer {
                name: node.name.clone(),
                flops: (node.flops as f64 * w).round() as u64,
                out_bytes: node.output.bytes(dtype),
                nodes: vec![id],
            });
        }
        if layers.is_empty() {
            return Err(GraphError::Empty);
        }
        Ok(LineDnn {
            name: graph.name().to_string(),
            input_bytes,
            layers,
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compute layers `k`.
    pub fn k(&self) -> usize {
        self.layers.len()
    }

    /// Byte size of the raw input tensor (cloud-only upload volume).
    pub fn input_bytes(&self) -> usize {
        self.input_bytes
    }

    /// Layer by 1-based index (`1..=k`), matching the paper's indexing.
    pub fn layer(&self, l: usize) -> &LineLayer {
        assert!(l >= 1 && l <= self.k(), "layer index {l} out of 1..={}", self.k());
        &self.layers[l - 1]
    }

    /// All layers in order.
    pub fn layers(&self) -> &[LineLayer] {
        &self.layers
    }

    /// Mobile-side FLOPs for cut `l ∈ 0..=k` (prefix sum of layer FLOPs).
    pub fn mobile_flops(&self, cut: CutPoint) -> u64 {
        assert!(cut <= self.k(), "cut {cut} out of 0..={}", self.k());
        self.layers[..cut].iter().map(|l| l.flops).sum()
    }

    /// Cloud-side FLOPs for cut `l ∈ 0..=k` (suffix sum).
    pub fn cloud_flops(&self, cut: CutPoint) -> u64 {
        assert!(cut <= self.k(), "cut {cut} out of 0..={}", self.k());
        self.layers[cut..].iter().map(|l| l.flops).sum()
    }

    /// Total FLOPs of one inference.
    pub fn total_flops(&self) -> u64 {
        self.mobile_flops(self.k())
    }

    /// Offloading volume in bytes for cut `l ∈ 0..=k`.
    ///
    /// `0` uploads the raw input; `k` uploads nothing (local-only); any
    /// other `l` uploads layer `l`'s output tensor.
    pub fn offload_bytes(&self, cut: CutPoint) -> usize {
        assert!(cut <= self.k(), "cut {cut} out of 0..={}", self.k());
        if cut == 0 {
            self.input_bytes
        } else if cut == self.k() {
            0
        } else {
            self.layers[cut - 1].out_bytes
        }
    }

    /// Returns `(mobile_flops, offload_bytes)` for every cut `0..=k`.
    ///
    /// This is the raw material the profile crate turns into the paper's
    /// `(f, g)` time vectors.
    pub fn cut_table(&self) -> Vec<(u64, usize)> {
        (0..=self.k())
            .map(|c| (self.mobile_flops(c), self.offload_bytes(c)))
            .collect()
    }

    /// Rename the model (used when deriving synthetic variants).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DnnGraph;
    use crate::layer::LayerKind as L;
    use crate::tensor::TensorShape as S;

    fn tiny() -> LineDnn {
        let mut b = DnnGraph::builder("tiny");
        let i = b.input(S::chw(3, 32, 32));
        b.chain(
            i,
            [
                L::conv(8, 3, 1, 1),
                L::maxpool(2, 2),
                L::Flatten,
                L::dense(10),
            ],
        );
        LineDnn::from_graph(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn extraction_drops_input_node() {
        let line = tiny();
        assert_eq!(line.k(), 4);
        assert_eq!(line.input_bytes(), 3 * 32 * 32 * 4);
        assert_eq!(line.layer(1).name, "conv1");
    }

    #[test]
    fn mobile_flops_is_prefix_sum() {
        let line = tiny();
        let total: u64 = line.layers().iter().map(|l| l.flops).sum();
        assert_eq!(line.mobile_flops(0), 0);
        assert_eq!(line.mobile_flops(line.k()), total);
        for c in 0..=line.k() {
            assert_eq!(
                line.mobile_flops(c) + line.cloud_flops(c),
                total,
                "conservation at cut {c}"
            );
        }
        // Monotone increasing in cut depth.
        for c in 1..=line.k() {
            assert!(line.mobile_flops(c) >= line.mobile_flops(c - 1));
        }
    }

    #[test]
    fn offload_semantics_at_extremes() {
        let line = tiny();
        assert_eq!(line.offload_bytes(0), line.input_bytes());
        assert_eq!(line.offload_bytes(line.k()), 0);
        // Cut after maxpool (layer 2) offloads the 8x16x16 map.
        assert_eq!(line.offload_bytes(2), 8 * 16 * 16 * 4);
    }

    #[test]
    fn cut_table_covers_all_cuts() {
        let line = tiny();
        let t = line.cut_table();
        assert_eq!(t.len(), line.k() + 1);
        assert_eq!(t[0], (0, line.input_bytes()));
        assert_eq!(t[line.k()].1, 0);
    }

    #[test]
    fn branching_graph_rejected() {
        let mut b = DnnGraph::builder("branch");
        let i = b.input(S::chw(8, 16, 16));
        let a = b.layer_after(i, L::pointwise(4));
        let c = b.layer_after(i, L::pointwise(4));
        b.merge(&[a, c], L::Add);
        let g = b.build().unwrap();
        assert!(matches!(
            LineDnn::from_graph(&g),
            Err(GraphError::NotLineStructure { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of 0..=")]
    fn out_of_range_cut_panics() {
        tiny().mobile_flops(99);
    }

    #[test]
    fn from_parts_roundtrip() {
        let line = LineDnn::from_parts(
            "synthetic",
            1000,
            vec![LineLayer {
                name: "l1".into(),
                flops: 10,
                out_bytes: 500,
                nodes: vec![],
            }],
        );
        assert_eq!(line.k(), 1);
        assert_eq!(line.offload_bytes(1), 0);
        assert_eq!(line.offload_bytes(0), 1000);
    }
}
