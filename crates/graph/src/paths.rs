//! General-structure DAG handling (paper §5.3, Fig. 9).
//!
//! The paper converts a general DAG into *independent paths* by
//! duplicating every node whose out-degree (symmetrically in-degree)
//! exceeds one, then partitions each path individually with the
//! line-structure algorithm and schedules the paths with a modified
//! Johnson's rule that counts duplicated nodes only once.
//!
//! Applied to a whole network, the conversion enumerates every
//! source→sink path, which is exponential in the number of stacked
//! branching modules (GoogLeNet's 9 inception modules × 4 branches each
//! would yield 4⁹ ≈ 262 k paths). We therefore also provide the
//! *articulation chain* — the nodes every source→sink path passes
//! through — and a segment decomposition between consecutive
//! articulation nodes. Branching is local to a segment (one inception
//! module), so enumerating paths per segment is cheap and the union of
//! per-segment paths carries exactly the information Alg. 3 needs. This
//! is an implementation refinement of the paper's conversion, not a
//! semantic change: within any segment it produces the same independent
//! paths the paper's duplication would.

use crate::error::GraphError;
use crate::graph::{DnnGraph, NodeId};

/// Default cap on enumerated paths before [`decompose_into_paths`]
/// refuses (guards against exponential blow-up on deep branching nets).
pub const DEFAULT_PATH_CAP: usize = 4096;

/// The multi-path view of a DAG after node duplication.
///
/// Each path is a sequence of *original* node ids from the source to the
/// sink; a node appearing on several paths is exactly the paper's
/// "duplicated node" and must be counted once during scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathDag {
    /// All source→sink paths, each in topological order.
    pub paths: Vec<Vec<NodeId>>,
}

impl PathDag {
    /// Number of independent paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no paths exist.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// How many paths contain `node` — its duplication count under the
    /// paper's conversion.
    pub fn multiplicity(&self, node: NodeId) -> usize {
        self.paths.iter().filter(|p| p.contains(&node)).count()
    }
}

/// Enumerate all source→sink paths of `graph`, failing once more than
/// `cap` paths exist.
pub fn decompose_into_paths(graph: &DnnGraph, cap: usize) -> Result<Vec<Vec<NodeId>>, GraphError> {
    let sources = graph.sources();
    if sources.is_empty() {
        return Err(GraphError::NoSource);
    }
    let mut paths = Vec::new();
    let mut stack: Vec<(NodeId, Vec<NodeId>)> = sources
        .into_iter()
        .map(|s| (s, vec![s]))
        .collect();
    while let Some((v, path)) = stack.pop() {
        let succ = graph.successors(v);
        if succ.is_empty() {
            paths.push(path);
            if paths.len() > cap {
                return Err(GraphError::MultipleSinks(vec![])); // see note below
            }
            continue;
        }
        for &s in succ {
            let mut next = path.clone();
            next.push(s);
            stack.push((s, next));
        }
    }
    // Deterministic order regardless of DFS stack behaviour.
    paths.sort();
    Ok(paths)
}

/// The paper's node-duplication conversion (Fig. 9): returns the
/// independent-path view of the DAG, capped at [`DEFAULT_PATH_CAP`].
pub fn duplicate_to_multipath(graph: &DnnGraph) -> Result<PathDag, GraphError> {
    Ok(PathDag {
        paths: decompose_into_paths(graph, DEFAULT_PATH_CAP)?,
    })
}

/// Nodes contained in every source→sink path, in topological order.
///
/// These are the single-node separators of the DAG — in a CNN, the
/// junctions between branching modules (e.g. each inception module's
/// `Filter Concat`). Cutting after an articulation node behaves exactly
/// like a line-structure cut: the offload volume is that node's output.
pub fn articulation_chain(graph: &DnnGraph) -> Vec<NodeId> {
    let n = graph.len();
    if n == 0 {
        return Vec::new();
    }
    // Count source→sink paths through each node with two DP sweeps, using
    // saturating arithmetic so deep branching cannot overflow. A node is
    // on every path iff paths_through(v) == total_paths.
    let mut from_source = vec![0u128; n];
    for s in graph.sources() {
        from_source[s.0] = 1;
    }
    for u in 0..n {
        let fu = from_source[u];
        if fu == 0 {
            continue;
        }
        for &v in graph.successors(NodeId(u)) {
            from_source[v.0] = from_source[v.0].saturating_add(fu);
        }
    }
    let mut to_sink = vec![0u128; n];
    for s in graph.sinks() {
        to_sink[s.0] = 1;
    }
    for u in (0..n).rev() {
        let mut acc: u128 = 0;
        for &v in graph.successors(NodeId(u)) {
            acc = acc.saturating_add(to_sink[v.0]);
        }
        if !graph.successors(NodeId(u)).is_empty() {
            to_sink[u] = acc;
        }
    }
    let total: u128 = graph
        .sinks()
        .iter()
        .map(|s| from_source[s.0])
        .fold(0u128, u128::saturating_add);
    (0..n)
        .filter(|&v| from_source[v].saturating_mul(to_sink[v]) == total && total > 0)
        .map(NodeId)
        .collect()
}

/// A stretch of the DAG between two consecutive articulation nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Articulation node the segment starts after.
    pub entry: NodeId,
    /// Articulation node the segment ends at.
    pub exit: NodeId,
    /// All entry→exit paths through the segment's interior (each path
    /// includes `entry` and `exit`). A trivial segment (direct edge or
    /// chain) has exactly one path.
    pub paths: Vec<Vec<NodeId>>,
}

impl Segment {
    /// True when the segment contains no branching.
    pub fn is_line(&self) -> bool {
        self.paths.len() == 1
    }
}

/// Split the DAG into segments between consecutive articulation nodes
/// and enumerate each segment's internal paths.
///
/// For line-structure graphs every node is an articulation node and each
/// segment is a single edge. For GoogLeNet each inception module becomes
/// one segment with one path per branch.
pub fn segments(graph: &DnnGraph) -> Result<Vec<Segment>, GraphError> {
    let chain = articulation_chain(graph);
    if chain.len() < 2 {
        return Err(GraphError::NoSource);
    }
    let mut out = Vec::with_capacity(chain.len() - 1);
    for w in chain.windows(2) {
        let (entry, exit) = (w[0], w[1]);
        // Enumerate entry→exit paths restricted to nodes between them.
        let mut paths = Vec::new();
        let mut stack = vec![vec![entry]];
        while let Some(path) = stack.pop() {
            let v = *path.last().expect("paths are never empty");
            if v == exit {
                paths.push(path);
                if paths.len() > DEFAULT_PATH_CAP {
                    return Err(GraphError::MultipleSinks(vec![]));
                }
                continue;
            }
            for &s in graph.successors(v) {
                if s <= exit {
                    let mut next = path.clone();
                    next.push(s);
                    stack.push(next);
                }
            }
        }
        paths.sort();
        out.push(Segment { entry, exit, paths });
    }
    Ok(out)
}

/// Collapse a general DAG onto its articulation chain, producing a
/// [`LineDnn`](crate::line::LineDnn) whose layers are the stretches
/// between consecutive articulation nodes.
///
/// This is the paper's treatment of MobileNet-v2 (§6.1): bottleneck
/// residual modules whose interior tensors are no smaller than the
/// module boundary are clustered as virtual blocks, and the network is
/// then handled as a line structure. Each chain window `(entry, exit]`
/// becomes one line layer: its FLOPs are the sum over every node
/// strictly after `entry` up to and including `exit` (interior branch
/// nodes included), and its offload volume is `exit`'s output tensor.
///
/// Fails with [`GraphError::NotLineStructure`] when the chain has fewer
/// than two nodes (no single-node separators to cut at).
pub fn collapse_to_line(graph: &DnnGraph) -> Result<crate::line::LineDnn, GraphError> {
    collapse_to_line_weighted(graph, |_| 1.0)
}

/// [`collapse_to_line`] with per-layer cost weighting: each node's
/// FLOPs are multiplied by `weight(&layer)` before aggregation (see
/// [`crate::line::LineDnn::from_graph_weighted`] for the rationale).
pub fn collapse_to_line_weighted(
    graph: &DnnGraph,
    weight: impl Fn(&crate::layer::LayerKind) -> f64,
) -> Result<crate::line::LineDnn, GraphError> {
    use crate::line::{LineDnn, LineLayer};

    let wflops = |id: NodeId| -> u64 {
        let node = graph.node(id);
        let w = weight(&node.layer);
        assert!(w > 0.0 && w.is_finite(), "weights must be positive");
        (node.flops as f64 * w).round() as u64
    };

    let chain = articulation_chain(graph);
    let Some((&source, rest)) = chain.split_first() else {
        return Err(GraphError::NoSource);
    };
    if rest.is_empty() {
        return Err(GraphError::NotLineStructure {
            node: graph.first_branch().unwrap_or(source),
        });
    }
    let dtype = graph.dtype();
    let input_bytes = graph.node(source).output.bytes(dtype);
    // FLOPs of source itself belong to no block (an Input node has 0
    // anyway; a compute source is charged to the first block).
    let mut layers = Vec::with_capacity(rest.len());
    let mut prev = source;
    let mut carried = wflops(source);
    for &exit in rest {
        let flops: u64 = ((prev.0 + 1)..=exit.0)
            .map(|i| wflops(NodeId(i)))
            .sum::<u64>()
            + std::mem::take(&mut carried);
        let nodes: Vec<NodeId> = ((prev.0 + 1)..=exit.0).map(NodeId).collect();
        layers.push(LineLayer {
            name: graph.node(exit).name.clone(),
            flops,
            out_bytes: graph.node(exit).output.bytes(dtype),
            nodes,
        });
        prev = exit;
    }
    Ok(LineDnn::from_parts(graph.name(), input_bytes, layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, LayerKind as L};
    use crate::tensor::TensorShape as S;

    /// The paper's Fig. 9(a): v0 -> v1 -> {v2, v3} -> v4 -> v7 and
    /// v0 -> v5 -> v6 -> v7.
    fn fig9() -> DnnGraph {
        let mut b = DnnGraph::builder("fig9");
        let v0 = b.input(S::chw(4, 8, 8));
        let relu = || L::Act(Activation::ReLU);
        let v1 = b.layer_after(v0, L::pointwise(4));
        let v2 = b.layer_after(v1, relu());
        let v3 = b.layer_after(v1, relu());
        let v4 = b.merge(&[v2, v3], L::Add);
        let v5 = b.layer_after(v0, L::pointwise(4));
        let v6 = b.layer_after(v5, relu());
        b.merge(&[v4, v6], L::Add);
        b.build().unwrap()
    }

    fn line() -> DnnGraph {
        let mut b = DnnGraph::builder("line");
        let i = b.input(S::chw(3, 16, 16));
        b.chain(i, [L::conv(4, 3, 1, 1), L::maxpool(2, 2), L::dense(10)]);
        b.build().unwrap()
    }

    #[test]
    fn fig9_has_three_paths() {
        let g = fig9();
        let pd = duplicate_to_multipath(&g).unwrap();
        // Paths: v0-v1-v2-v4-v7, v0-v1-v3-v4-v7, v0-v5-v6-v7 (ids remapped
        // by topo sort, so check counts and lengths).
        assert_eq!(pd.len(), 3);
        let mut lens: Vec<usize> = pd.paths.iter().map(Vec::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![4, 5, 5]);
    }

    #[test]
    fn fig9_duplication_multiplicity() {
        let g = fig9();
        let pd = duplicate_to_multipath(&g).unwrap();
        let source = g.sources()[0];
        let sink = g.sinks()[0];
        // Source and sink appear on all three paths (dup count 3).
        assert_eq!(pd.multiplicity(source), 3);
        assert_eq!(pd.multiplicity(sink), 3);
    }

    #[test]
    fn line_graph_single_path() {
        let g = line();
        let pd = duplicate_to_multipath(&g).unwrap();
        assert_eq!(pd.len(), 1);
        assert_eq!(pd.paths[0].len(), g.len());
    }

    #[test]
    fn articulation_chain_of_line_is_everything() {
        let g = line();
        let chain = articulation_chain(&g);
        assert_eq!(chain.len(), g.len());
    }

    #[test]
    fn articulation_chain_of_fig9_is_endpoints() {
        let g = fig9();
        let chain = articulation_chain(&g);
        // Only v0 (source) and v7 (sink) lie on all three paths.
        assert_eq!(chain, vec![g.sources()[0], g.sinks()[0]]);
    }

    #[test]
    fn diamond_articulation_includes_junction() {
        // input -> {a, b} -> concat -> dense: concat is an articulation.
        let mut b = DnnGraph::builder("d");
        let i = b.input(S::chw(8, 4, 4));
        let a = b.layer_after(i, L::pointwise(4));
        let c = b.layer_after(i, L::pointwise(4));
        let m = b.merge(&[a, c], L::Concat);
        let d = b.layer_after(m, L::dense(10));
        let g = b.build().unwrap();
        let chain = articulation_chain(&g);
        assert_eq!(chain, vec![i, m, d]);
    }

    #[test]
    fn segments_of_line_are_edges() {
        let g = line();
        let segs = segments(&g).unwrap();
        assert_eq!(segs.len(), g.len() - 1);
        assert!(segs.iter().all(Segment::is_line));
    }

    #[test]
    fn segments_of_diamond() {
        let mut b = DnnGraph::builder("d");
        let i = b.input(S::chw(8, 4, 4));
        let a = b.layer_after(i, L::pointwise(4));
        let c = b.layer_after(i, L::pointwise(4));
        let m = b.merge(&[a, c], L::Concat);
        b.layer_after(m, L::dense(10));
        let g = b.build().unwrap();
        let segs = segments(&g).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].paths.len(), 2); // the two branches
        assert!(segs[1].is_line()); // concat -> dense
    }

    #[test]
    fn collapse_to_line_of_line_matches_from_graph() {
        let g = line();
        let collapsed = collapse_to_line(&g).unwrap();
        let direct = crate::line::LineDnn::from_graph(&g).unwrap();
        assert_eq!(collapsed.k(), direct.k());
        assert_eq!(collapsed.input_bytes(), direct.input_bytes());
        for l in 1..=direct.k() {
            assert_eq!(collapsed.layer(l).flops, direct.layer(l).flops);
            assert_eq!(collapsed.layer(l).out_bytes, direct.layer(l).out_bytes);
        }
    }

    #[test]
    fn collapse_to_line_sums_branch_flops() {
        // input -> {a, b} -> concat -> dense.
        let mut b = DnnGraph::builder("d");
        let i = b.input(S::chw(8, 4, 4));
        let a = b.layer_after(i, L::pointwise(4));
        let c = b.layer_after(i, L::pointwise(4));
        let m = b.merge(&[a, c], L::Concat);
        b.layer_after(m, L::dense(10));
        let g = b.build().unwrap();
        let collapsed = collapse_to_line(&g).unwrap();
        // Two blocks: (input, concat] and (concat, dense].
        assert_eq!(collapsed.k(), 2);
        assert_eq!(collapsed.total_flops(), g.total_flops());
        assert_eq!(
            collapsed.layer(1).flops,
            g.node(a).flops + g.node(c).flops + g.node(m).flops
        );
        assert_eq!(collapsed.offload_bytes(1), g.node(m).output.bytes(g.dtype()));
    }

    #[test]
    fn collapse_rejects_no_separators() {
        // Two parallel disconnected chains: no common articulation nodes.
        let mut b = DnnGraph::builder("par");
        let i1 = b.input(S::flat(4));
        b.layer_after(i1, L::dense(2));
        let i2 = b.input(S::flat(4));
        b.layer_after(i2, L::dense(2));
        let g = b.build().unwrap();
        assert!(collapse_to_line(&g).is_err());
    }

    #[test]
    fn path_cap_enforced() {
        let g = fig9();
        assert!(decompose_into_paths(&g, 2).is_err());
        assert_eq!(decompose_into_paths(&g, 3).unwrap().len(), 3);
    }

    #[test]
    fn paths_are_topologically_ordered() {
        let g = fig9();
        for path in decompose_into_paths(&g, 100).unwrap() {
            for w in path.windows(2) {
                assert!(w[0] < w[1]);
                assert!(g.successors(w[0]).contains(&w[1]));
            }
        }
    }
}
