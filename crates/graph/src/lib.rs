//! # mcdnn-graph
//!
//! Layer-level DAG representation of deep neural networks, as used by the
//! partition/scheduling algorithms of *"Joint Optimization of DNN Partition
//! and Scheduling for Mobile Cloud Computing"* (Duan & Wu, ICPP 2021).
//!
//! The paper models a DNN as a DAG `G = (V, E)` where each node is a layer
//! (partition granularity is layer-wise) and each edge carries the tensor
//! communicated between layers; the edge weight is the communication
//! volume (paper §3.1, Fig. 3). This crate provides:
//!
//! * [`tensor::TensorShape`] — tensor shapes with element/byte counts,
//!   which become the DAG edge weights.
//! * [`layer::LayerKind`] — the layer taxonomy (convolution, pooling,
//!   dense, activation, normalization, element-wise merge, …) with shape
//!   inference, parameter counts and FLOP counts.
//! * [`graph::DnnGraph`] — the DAG itself: builder API, validation,
//!   topological order, and structural queries.
//! * [`line::LineDnn`] — the line-structure specialisation (paper
//!   Fig. 3(b)) where a partition is a single cut-point and the
//!   computation/communication costs become unary functions of the cut
//!   depth.
//! * [`cluster`] — *virtual block* clustering (paper §3.2): layers after
//!   which the offloading volume increases are merged into a block so the
//!   remaining cut candidates have non-increasing communication volume.
//! * [`paths`] — general-structure DAG handling (paper §5.3, Fig. 9):
//!   node duplication that converts an arbitrary DAG into independent
//!   source→sink paths without changing partial-order relations.
//! * [`dot`] — Graphviz export for inspection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod dot;
pub mod error;
pub mod graph;
pub mod layer;
pub mod line;
pub mod parse;
pub mod paths;
pub mod summary;
pub mod tensor;

pub use cluster::{cluster_virtual_blocks, VirtualBlock};
pub use error::GraphError;
pub use graph::{DnnGraph, GraphBuilder, Node, NodeId};
pub use layer::{Activation, CostClass, LayerKind, PoolKind};
pub use parse::{parse_model, ModelError};
pub use line::{CutPoint, LineDnn, LineLayer};
pub use paths::{
    articulation_chain, collapse_to_line, collapse_to_line_weighted, decompose_into_paths,
    duplicate_to_multipath, segments, PathDag, Segment,
};
pub use summary::{cost_breakdown, CostBreakdown};
pub use tensor::{DType, TensorShape};
