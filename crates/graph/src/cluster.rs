//! Virtual-block clustering (paper §3.2).
//!
//! The paper's analysis requires the offloading volume `g(l)` to be
//! non-increasing in the cut depth `l`. Real DNNs violate this locally —
//! e.g. a MobileNet-v2 bottleneck expands `[24, 56, 56]` to
//! `[144, 56, 56]` before shrinking back (paper Fig. 10). Cutting inside
//! such an expansion is *dominated*: there is an earlier cut with both
//! less mobile computation and no more communication, so it can never be
//! optimal for any bandwidth or schedule. The paper therefore clusters
//! those layers into a *virtual block* and only allows cuts at block
//! boundaries.
//!
//! [`cluster_virtual_blocks`] implements exactly that dominance
//! reduction: the surviving cut candidates are the strict prefix-minima
//! of the offload-volume sequence, and every maximal run of dominated
//! layers is merged into the block ending at the next surviving layer.

use crate::line::{LineDnn, LineLayer};

/// A maximal run of original layers merged into one clustered layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualBlock {
    /// 1-based index of the first original layer in the block.
    pub start: usize,
    /// 1-based index of the last original layer in the block (the only
    /// admissible cut position the block retains).
    pub end: usize,
}

impl VirtualBlock {
    /// Number of original layers merged into this block.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// True when the block wraps a single original layer (no merging).
    pub fn is_trivial(&self) -> bool {
        self.start == self.end
    }

    /// Never empty by construction; provided for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Cluster dominated cut positions into virtual blocks.
///
/// Returns the clustered [`LineDnn`] (whose `g` sequence over interior
/// cuts is strictly decreasing) together with the block map back into
/// the original layer indices.
///
/// A cut after original layer `i` survives iff its offload volume is
/// strictly smaller than the volume after every earlier layer *and*
/// strictly smaller than the raw input volume (otherwise the cloud-only
/// cut `0` dominates it). The final layer always survives: the
/// local-only partition (`g = 0`) is always admissible.
pub fn cluster_virtual_blocks(line: &LineDnn) -> (LineDnn, Vec<VirtualBlock>) {
    let k = line.k();
    assert!(k > 0, "cannot cluster an empty line DNN");

    // Strict prefix-minima of offload volume, seeded with the input size.
    let mut survivors: Vec<usize> = Vec::with_capacity(k);
    let mut running_min = line.input_bytes();
    for l in 1..=k {
        let vol = line.offload_bytes(l);
        let survives = l == k || vol < running_min;
        if survives {
            survivors.push(l);
        }
        running_min = running_min.min(vol);
    }

    let mut blocks = Vec::with_capacity(survivors.len());
    let mut layers = Vec::with_capacity(survivors.len());
    let mut start = 1usize;
    for &end in &survivors {
        let block = VirtualBlock { start, end };
        let flops: u64 = (start..=end).map(|l| line.layer(l).flops).sum();
        let mut nodes = Vec::new();
        let mut names: Vec<&str> = Vec::new();
        for l in start..=end {
            let layer = line.layer(l);
            nodes.extend_from_slice(&layer.nodes);
            names.push(&layer.name);
        }
        let name = if block.is_trivial() {
            names[0].to_string()
        } else {
            format!("[{}]", names.join("+"))
        };
        layers.push(LineLayer {
            name,
            flops,
            out_bytes: line.layer(end).out_bytes,
            nodes,
        });
        blocks.push(block);
        start = end + 1;
    }

    let clustered = LineDnn::from_parts(
        format!("{}/clustered", line.name()),
        line.input_bytes(),
        layers,
    );
    (clustered, blocks)
}

/// True when the interior offload volumes of `line` are strictly
/// decreasing and all below the input volume — the property clustering
/// establishes and the partition theory assumes.
pub fn is_strictly_decreasing_volume(line: &LineDnn) -> bool {
    let mut prev = line.input_bytes();
    for l in 1..line.k() {
        let vol = line.offload_bytes(l);
        if vol >= prev {
            return false;
        }
        prev = vol;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(input_bytes: usize, spec: &[(u64, usize)]) -> LineDnn {
        let layers = spec
            .iter()
            .enumerate()
            .map(|(i, &(flops, out_bytes))| LineLayer {
                name: format!("l{}", i + 1),
                flops,
                out_bytes,
                nodes: vec![],
            })
            .collect();
        LineDnn::from_parts("synth", input_bytes, layers)
    }

    #[test]
    fn already_monotone_is_untouched() {
        let line = synth(1000, &[(10, 800), (10, 400), (10, 200), (10, 100)]);
        let (clustered, blocks) = cluster_virtual_blocks(&line);
        assert_eq!(clustered.k(), 4);
        assert!(blocks.iter().all(VirtualBlock::is_trivial));
        assert!(is_strictly_decreasing_volume(&clustered));
    }

    #[test]
    fn expansion_is_merged_mobilenet_style() {
        // Mimics a bottleneck: 24ch -> expand 144ch -> depthwise -> project 24ch.
        let line = synth(
            300,
            &[
                (10, 200), // entry
                (10, 1200), // expand: dominated
                (10, 1200), // depthwise: dominated
                (10, 150),  // project: survives
                (10, 80),
            ],
        );
        let (clustered, blocks) = cluster_virtual_blocks(&line);
        assert_eq!(
            blocks,
            vec![
                VirtualBlock { start: 1, end: 1 },
                VirtualBlock { start: 2, end: 4 },
                VirtualBlock { start: 5, end: 5 },
            ]
        );
        assert_eq!(clustered.k(), 3);
        // Block FLOPs are summed, block volume is the last layer's.
        assert_eq!(clustered.layer(2).flops, 30);
        assert_eq!(clustered.layer(2).out_bytes, 150);
        assert!(is_strictly_decreasing_volume(&clustered));
    }

    #[test]
    fn equal_volume_is_dominated() {
        // Volume staying flat is dominated (same comm, more compute).
        let line = synth(500, &[(10, 400), (10, 400), (10, 100)]);
        let (clustered, blocks) = cluster_virtual_blocks(&line);
        assert_eq!(clustered.k(), 2);
        assert_eq!(blocks[1], VirtualBlock { start: 2, end: 3 });
    }

    #[test]
    fn layer_not_below_input_is_dominated() {
        // First layer inflates above the raw input: cloud-only dominates it.
        let line = synth(100, &[(10, 400), (10, 50)]);
        let (clustered, blocks) = cluster_virtual_blocks(&line);
        assert_eq!(clustered.k(), 1);
        assert_eq!(blocks, vec![VirtualBlock { start: 1, end: 2 }]);
        assert_eq!(clustered.layer(1).flops, 20);
    }

    #[test]
    fn last_layer_always_survives() {
        // Even a monotone-increasing volume keeps the local-only endpoint.
        let line = synth(10, &[(10, 20), (10, 40), (10, 80)]);
        let (clustered, blocks) = cluster_virtual_blocks(&line);
        assert_eq!(clustered.k(), 1);
        assert_eq!(blocks, vec![VirtualBlock { start: 1, end: 3 }]);
        // Interior cuts are gone; only cloud-only (0) and local-only (1).
        assert_eq!(clustered.offload_bytes(0), 10);
        assert_eq!(clustered.offload_bytes(1), 0);
    }

    #[test]
    fn flops_conserved_by_clustering() {
        let line = synth(
            1000,
            &[(7, 900), (11, 1100), (13, 850), (17, 850), (19, 100)],
        );
        let (clustered, _) = cluster_virtual_blocks(&line);
        assert_eq!(clustered.total_flops(), line.total_flops());
    }

    #[test]
    fn blocks_tile_the_layer_range() {
        let line = synth(
            64,
            &[(1, 100), (1, 32), (1, 48), (1, 16), (1, 16), (1, 8)],
        );
        let (_, blocks) = cluster_virtual_blocks(&line);
        assert_eq!(blocks[0].start, 1);
        assert_eq!(blocks.last().unwrap().end, line.k());
        for w in blocks.windows(2) {
            assert_eq!(w[0].end + 1, w[1].start, "blocks must tile contiguously");
        }
    }

    #[test]
    fn single_layer_line() {
        let line = synth(100, &[(5, 10)]);
        let (clustered, blocks) = cluster_virtual_blocks(&line);
        assert_eq!(clustered.k(), 1);
        assert_eq!(blocks, vec![VirtualBlock { start: 1, end: 1 }]);
    }
}
