//! A small textual model format (`.dnn`) for loading architectures
//! without writing Rust.
//!
//! One layer per line: `name: op(args) [<- input[, input…]]`. Inputs
//! default to the previous line's layer, so plain chains need no
//! wiring. Comments start with `#`; blank lines are skipped.
//!
//! ```text
//! # a tiny branchy classifier
//! input:  input(3, 32, 32)
//! conv1:  conv(16, k=3, s=1, p=1)
//! relu1:  relu
//! a:      conv(8, k=1)            <- relu1
//! b:      conv(8, k=3, p=1)       <- relu1
//! cat:    concat                  <- a, b
//! pool:   maxpool(k=2, s=2)
//! out:    dense(10)
//! ```
//!
//! Supported ops: `input(c, h, w)`, `conv(out, k=.., s=.., p=.., g=..)`
//! (`s`, `p`, `g` optional, defaulting to 1, 0, 1; `g=0` means
//! depthwise), `maxpool(k=.., s=.., p=..)`, `avgpool(k=.., s=.., p=..)`,
//! `gavgpool`, `dense(out)`, `relu`, `relu6`, `sigmoid`, `tanh`,
//! `batchnorm`, `lrn`, `dropout`, `flatten`, `concat`, `add`,
//! `softmax`.

use std::collections::HashMap;

use crate::error::GraphError;
use crate::graph::{DnnGraph, GraphBuilder, NodeId};
use crate::layer::{Activation, LayerKind, PoolKind};
use crate::tensor::TensorShape;

/// Parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on (1-based).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors from [`parse_model`]: syntax or graph validation.
#[derive(Debug)]
pub enum ModelError {
    /// Text could not be parsed.
    Parse(ParseError),
    /// Parsed fine but the graph is invalid (cycle, shape mismatch, …).
    Graph(GraphError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Parse(e) => write!(f, "parse error: {e}"),
            ModelError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

fn perr(line: usize, message: impl Into<String>) -> ModelError {
    ModelError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// Parse a `.dnn` model description into a validated [`DnnGraph`].
pub fn parse_model(name: &str, text: &str) -> Result<DnnGraph, ModelError> {
    let mut builder = GraphBuilder::new(name);
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    let mut prev: Option<NodeId> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let (decl, inputs_part) = match content.split_once("<-") {
            Some((d, i)) => (d.trim(), Some(i.trim())),
            None => (content, None),
        };
        let Some((layer_name, op_part)) = decl.split_once(':') else {
            return Err(perr(line, format!("expected 'name: op', got '{decl}'")));
        };
        let layer_name = layer_name.trim();
        if layer_name.is_empty() {
            return Err(perr(line, "layer name is empty"));
        }
        if by_name.contains_key(layer_name) {
            return Err(perr(line, format!("duplicate layer name '{layer_name}'")));
        }
        let kind = parse_op(op_part.trim(), line)?;

        let explicit_inputs: Option<Vec<NodeId>> = match inputs_part {
            None => None,
            Some(list) => {
                let mut ids = Vec::new();
                for token in list.split(',') {
                    let token = token.trim();
                    let Some(&id) = by_name.get(token) else {
                        return Err(perr(line, format!("unknown input layer '{token}'")));
                    };
                    ids.push(id);
                }
                Some(ids)
            }
        };

        let id = builder.add_named(kind.clone(), layer_name);
        match (&kind, explicit_inputs) {
            (LayerKind::Input { .. }, None) => {}
            (LayerKind::Input { .. }, Some(_)) => {
                return Err(perr(line, "input layers take no '<-' inputs"));
            }
            (_, Some(inputs)) => {
                if inputs.is_empty() {
                    return Err(perr(line, "'<-' requires at least one input"));
                }
                for p in inputs {
                    builder.connect(p, id);
                }
            }
            (_, None) => {
                let Some(p) = prev else {
                    return Err(perr(
                        line,
                        "no previous layer to connect from; start with an input layer",
                    ));
                };
                builder.connect(p, id);
            }
        }
        by_name.insert(layer_name.to_string(), id);
        prev = Some(id);
    }

    builder.build().map_err(ModelError::Graph)
}

/// Parse `op` or `op(args)` into a [`LayerKind`].
fn parse_op(op: &str, line: usize) -> Result<LayerKind, ModelError> {
    let (head, args) = match op.split_once('(') {
        Some((h, rest)) => {
            let Some(inner) = rest.strip_suffix(')') else {
                return Err(perr(line, format!("missing ')' in '{op}'")));
            };
            (h.trim(), parse_args(inner, line)?)
        }
        None => (op.trim(), Args::default()),
    };
    let kind = match head {
        "input" => {
            let [c, h, w] = args.positional[..] else {
                return Err(perr(line, "input needs (channels, height, width)"));
            };
            LayerKind::Input {
                shape: TensorShape::chw(c, h, w),
            }
        }
        "conv" => {
            let [out] = args.positional[..] else {
                return Err(perr(line, "conv needs (out_channels, …)"));
            };
            let groups = match args.named.get("g") {
                Some(0) => out, // g=0 shorthand for depthwise
                Some(&g) => g,
                None => 1,
            };
            LayerKind::Conv2d {
                out_channels: out,
                kernel: args.named.get("k").copied().unwrap_or(1),
                stride: args.named.get("s").copied().unwrap_or(1),
                padding: args.named.get("p").copied().unwrap_or(0),
                groups,
                bias: args.named.get("bias").copied().unwrap_or(1) != 0,
            }
        }
        "maxpool" | "avgpool" => LayerKind::Pool2d {
            kind: if head == "maxpool" {
                PoolKind::Max
            } else {
                PoolKind::Avg
            },
            kernel: args.named.get("k").copied().unwrap_or(2),
            stride: args.named.get("s").copied().unwrap_or(2),
            padding: args.named.get("p").copied().unwrap_or(0),
        },
        "gavgpool" => LayerKind::GlobalAvgPool,
        "dense" => {
            let [out] = args.positional[..] else {
                return Err(perr(line, "dense needs (out_features)"));
            };
            LayerKind::Dense {
                out_features: out,
                bias: args.named.get("bias").copied().unwrap_or(1) != 0,
            }
        }
        "relu" => LayerKind::Act(Activation::ReLU),
        "relu6" => LayerKind::Act(Activation::ReLU6),
        "sigmoid" => LayerKind::Act(Activation::Sigmoid),
        "tanh" => LayerKind::Act(Activation::Tanh),
        "batchnorm" => LayerKind::BatchNorm,
        "lrn" => LayerKind::Lrn,
        "dropout" => LayerKind::Dropout,
        "flatten" => LayerKind::Flatten,
        "concat" => LayerKind::Concat,
        "add" => LayerKind::Add,
        "softmax" => LayerKind::Softmax,
        other => return Err(perr(line, format!("unknown op '{other}'"))),
    };
    Ok(kind)
}

#[derive(Default)]
struct Args {
    positional: Vec<usize>,
    named: HashMap<String, usize>,
}

fn parse_args(inner: &str, line: usize) -> Result<Args, ModelError> {
    let mut args = Args::default();
    for tok in inner.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        match tok.split_once('=') {
            Some((k, v)) => {
                let value = v
                    .trim()
                    .parse()
                    .map_err(|_| perr(line, format!("bad value in '{tok}'")))?;
                args.named.insert(k.trim().to_string(), value);
            }
            None => {
                if !args.named.is_empty() {
                    return Err(perr(
                        line,
                        format!("positional arg '{tok}' after named args"),
                    ));
                }
                args.positional.push(
                    tok.parse()
                        .map_err(|_| perr(line, format!("bad number '{tok}'")))?,
                );
            }
        }
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BRANCHY: &str = r"
# a tiny branchy classifier
input:  input(3, 32, 32)
conv1:  conv(16, k=3, s=1, p=1)
relu1:  relu
a:      conv(8, k=1)            <- relu1
b:      conv(8, k=3, p=1)       <- relu1
cat:    concat                  <- a, b
pool:   maxpool(k=2, s=2)
out:    dense(10)
";

    #[test]
    fn parses_branchy_model() {
        let g = parse_model("branchy", BRANCHY).unwrap();
        assert_eq!(g.len(), 8);
        assert!(!g.is_line_structure());
        let sink = g.sinks()[0];
        assert_eq!(g.node(sink).output, TensorShape::flat(10));
        // Concat of 8 + 8 channels at 32×32.
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.output == TensorShape::chw(16, 32, 32) && n.layer.name() == "concat"));
    }

    #[test]
    fn implicit_chaining() {
        let g = parse_model(
            "chain",
            "i: input(3, 8, 8)\nc: conv(4, k=3, p=1)\nr: relu\nd: dense(2)\n",
        )
        .unwrap();
        assert!(g.is_line_structure());
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn depthwise_shorthand() {
        let g = parse_model(
            "dw",
            "i: input(8, 8, 8)\nd: conv(8, k=3, p=1, g=0, bias=0)\n",
        )
        .unwrap();
        let node = &g.nodes()[1];
        assert!(matches!(
            node.layer,
            LayerKind::Conv2d {
                groups: 8,
                bias: false,
                ..
            }
        ));
    }

    #[test]
    fn residual_add() {
        let text = "i: input(4, 8, 8)
c1: conv(4, k=3, p=1)
c2: conv(4, k=3, p=1)
res: add <- i, c2
";
        let g = parse_model("res", text).unwrap();
        let sink = g.sinks()[0];
        assert_eq!(g.node(sink).output, TensorShape::chw(4, 8, 8));
    }

    #[test]
    fn error_line_numbers() {
        let e = parse_model("bad", "i: input(3, 8, 8)\nx: frobnicate\n").unwrap_err();
        let ModelError::Parse(p) = e else {
            panic!("expected parse error")
        };
        assert_eq!(p.line, 2);
        assert!(p.message.contains("frobnicate"));
    }

    #[test]
    fn unknown_input_reference() {
        let e = parse_model("bad", "i: input(3, 8, 8)\nc: concat <- i, ghost\n").unwrap_err();
        assert!(e.to_string().contains("ghost"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let e = parse_model("dup", "i: input(3, 8, 8)\ni: relu\n").unwrap_err();
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn shape_errors_surface_as_graph_errors() {
        // Concat of mismatched spatial sizes: parses, fails validation.
        let text = "i: input(3, 8, 8)
a: maxpool(k=2, s=2)
b: relu <- i
c: concat <- a, b
";
        let e = parse_model("mismatch", text).unwrap_err();
        assert!(matches!(e, ModelError::Graph(_)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_model(
            "c",
            "\n# leading comment\ni: input(1, 4, 4)  # trailing\n\nr: relu\n",
        )
        .unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_model("e", "no colon here\n").is_err());
        assert!(parse_model("e", "x: conv(4\n").is_err());
        assert!(parse_model("e", "x: conv(k=3, 4)\n").is_err()); // positional after named
        assert!(parse_model("e", "x: relu\n").is_err()); // nothing to chain from
        assert!(parse_model("e", "i: input(3, 8, 8) <- i\n").is_err());
        assert!(parse_model("e", "i: input(3)\n").is_err());
        assert!(parse_model("e", "i: input(3, 8, 8)\nd: dense(x)\n").is_err());
    }

    #[test]
    fn parsed_model_plans_end_to_end() {
        // The parsed graph feeds the normal pipeline.
        let g = parse_model("branchy", BRANCHY).unwrap();
        let line = crate::paths::collapse_to_line(&g).unwrap();
        let (clustered, _) = crate::cluster::cluster_virtual_blocks(&line);
        assert!(clustered.k() >= 1);
        assert_eq!(clustered.total_flops(), g.total_flops());
    }
}
