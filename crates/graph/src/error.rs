//! Error types for DNN graph construction and validation.

use std::fmt;

use crate::graph::NodeId;
use crate::tensor::TensorShape;

/// Errors raised while building or validating a [`crate::DnnGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A referenced node id does not exist in the graph.
    UnknownNode(NodeId),
    /// The graph contains a directed cycle (not a DAG).
    CycleDetected,
    /// A layer received an input shape it cannot process.
    ShapeMismatch {
        /// Node whose shape inference failed.
        node: NodeId,
        /// Human-readable explanation.
        reason: String,
    },
    /// A node has the wrong number of inputs for its layer kind.
    ArityMismatch {
        /// Offending node.
        node: NodeId,
        /// Inputs the layer kind expects (`None` = variadic ≥ 2).
        expected: Option<usize>,
        /// Inputs actually wired.
        actual: usize,
    },
    /// The graph has no source (input) node.
    NoSource,
    /// The graph has more than one sink and an operation required a
    /// unique output node.
    MultipleSinks(Vec<NodeId>),
    /// An operation required a line-structure DNN but the graph branches.
    NotLineStructure {
        /// First node at which the structure branches.
        node: NodeId,
    },
    /// A duplicate edge was inserted.
    DuplicateEdge {
        /// Edge source.
        from: NodeId,
        /// Edge destination.
        to: NodeId,
    },
    /// Concatenation inputs disagree on spatial dimensions.
    ConcatSpatialMismatch {
        /// Offending node.
        node: NodeId,
        /// Shapes that failed to concatenate.
        shapes: Vec<TensorShape>,
    },
    /// The graph is empty.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id:?}"),
            GraphError::CycleDetected => write!(f, "graph contains a cycle; DNNs must be DAGs"),
            GraphError::ShapeMismatch { node, reason } => {
                write!(f, "shape inference failed at node {node:?}: {reason}")
            }
            GraphError::ArityMismatch {
                node,
                expected,
                actual,
            } => match expected {
                Some(e) => write!(f, "node {node:?} expects {e} input(s), got {actual}"),
                None => write!(f, "node {node:?} expects >= 2 inputs, got {actual}"),
            },
            GraphError::NoSource => write!(f, "graph has no input (source) node"),
            GraphError::MultipleSinks(sinks) => {
                write!(f, "graph has multiple sinks: {sinks:?}")
            }
            GraphError::NotLineStructure { node } => {
                write!(f, "graph is not line-structured; branches at node {node:?}")
            }
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from:?} -> {to:?}")
            }
            GraphError::ConcatSpatialMismatch { node, shapes } => {
                write!(
                    f,
                    "concat at node {node:?} with mismatched spatial dims: {shapes:?}"
                )
            }
            GraphError::Empty => write!(f, "graph is empty"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::ArityMismatch {
            node: NodeId(3),
            expected: Some(2),
            actual: 1,
        };
        let s = e.to_string();
        assert!(s.contains("expects 2"));
        assert!(s.contains("got 1"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(GraphError::CycleDetected);
        assert!(e.to_string().contains("cycle"));
    }
}
