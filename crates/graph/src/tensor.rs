//! Tensor shapes and element types.
//!
//! Edge weights in the paper's DAG are communication volumes: the byte
//! size of the tensor flowing between two layers. We therefore track the
//! exact shape of every intermediate tensor so the profile crate can turn
//! it into a communication time.

use std::fmt;

/// Element type of a tensor.
///
/// The paper's prototype serialises `float32` PyTorch tensors; quantised
/// deployments commonly use `f16`/`i8`, which scale the offloading volume
/// and therefore shift the optimal cut — so the type is explicit here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 32-bit IEEE float (PyTorch default, used in the paper).
    #[default]
    F32,
    /// 16-bit float.
    F16,
    /// 8-bit integer (quantised inference).
    I8,
    /// 64-bit float.
    F64,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::I8 => 1,
            DType::F64 => 8,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::I8 => "i8",
            DType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// Shape of a tensor flowing along a DAG edge.
///
/// Convolutional feature maps are `CHW` (channels, height, width) as in
/// the paper's Fig. 10 annotations (e.g. `[144, 56, 56]`); dense-layer
/// activations are flat vectors. Batch dimension is implicit: the paper
/// schedules single-image inference jobs, so batch is always 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorShape {
    /// Feature map: channels × height × width.
    Chw {
        /// Number of channels.
        c: usize,
        /// Spatial height.
        h: usize,
        /// Spatial width.
        w: usize,
    },
    /// Flat activation vector of the given length.
    Flat(usize),
}

impl TensorShape {
    /// A `CHW` feature map shape.
    #[inline]
    pub const fn chw(c: usize, h: usize, w: usize) -> Self {
        TensorShape::Chw { c, h, w }
    }

    /// A flat vector shape.
    #[inline]
    pub const fn flat(n: usize) -> Self {
        TensorShape::Flat(n)
    }

    /// Number of scalar elements in the tensor.
    #[inline]
    pub const fn elements(&self) -> usize {
        match *self {
            TensorShape::Chw { c, h, w } => c * h * w,
            TensorShape::Flat(n) => n,
        }
    }

    /// Serialized size in bytes for the given element type.
    ///
    /// This is the DAG edge weight: the offloading volume if the DNN is
    /// cut on this edge.
    #[inline]
    pub const fn bytes(&self, dtype: DType) -> usize {
        self.elements() * dtype.bytes()
    }

    /// Channel count (`c` for CHW, the full length for flat vectors).
    #[inline]
    pub const fn channels(&self) -> usize {
        match *self {
            TensorShape::Chw { c, .. } => c,
            TensorShape::Flat(n) => n,
        }
    }

    /// Spatial dimensions `(h, w)`; flat vectors are `(1, 1)`.
    #[inline]
    pub const fn spatial(&self) -> (usize, usize) {
        match *self {
            TensorShape::Chw { h, w, .. } => (h, w),
            TensorShape::Flat(_) => (1, 1),
        }
    }

    /// Flatten a feature map into a vector shape of the same element count.
    #[inline]
    pub const fn flattened(&self) -> TensorShape {
        TensorShape::Flat(self.elements())
    }

    /// True when the tensor has spatial structure (CHW).
    #[inline]
    pub const fn is_spatial(&self) -> bool {
        matches!(self, TensorShape::Chw { .. })
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TensorShape::Chw { c, h, w } => write!(f, "[{c}, {h}, {w}]"),
            TensorShape::Flat(n) => write!(f, "[{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::I8.bytes(), 1);
        assert_eq!(DType::F64.bytes(), 8);
    }

    #[test]
    fn chw_elements_and_bytes() {
        let s = TensorShape::chw(144, 56, 56);
        assert_eq!(s.elements(), 144 * 56 * 56);
        assert_eq!(s.bytes(DType::F32), 144 * 56 * 56 * 4);
        assert_eq!(s.bytes(DType::I8), 144 * 56 * 56);
    }

    #[test]
    fn flat_elements() {
        let s = TensorShape::flat(4096);
        assert_eq!(s.elements(), 4096);
        assert_eq!(s.channels(), 4096);
        assert_eq!(s.spatial(), (1, 1));
        assert!(!s.is_spatial());
    }

    #[test]
    fn flatten_preserves_count() {
        let s = TensorShape::chw(256, 6, 6);
        assert_eq!(s.flattened(), TensorShape::flat(256 * 6 * 6));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(TensorShape::chw(24, 56, 56).to_string(), "[24, 56, 56]");
        assert_eq!(TensorShape::flat(1000).to_string(), "[1000]");
    }
}
