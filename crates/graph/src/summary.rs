//! Aggregate statistics of a DNN graph, broken down by execution-cost
//! class — the quantities that decide how far a pure-FLOP device model
//! can be trusted for a given architecture.

use crate::graph::DnnGraph;
use crate::layer::CostClass;

/// FLOPs and layer counts per [`CostClass`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// FLOPs in dense GEMM-like layers.
    pub dense_flops: u64,
    /// FLOPs in grouped/depthwise convolutions.
    pub depthwise_flops: u64,
    /// FLOPs in memory-bound layers.
    pub memory_flops: u64,
    /// Layer counts per class, same order.
    pub dense_layers: usize,
    /// Depthwise layer count.
    pub depthwise_layers: usize,
    /// Memory-bound layer count.
    pub memory_layers: usize,
}

impl CostBreakdown {
    /// Total FLOPs across classes.
    pub fn total_flops(&self) -> u64 {
        self.dense_flops + self.depthwise_flops + self.memory_flops
    }

    /// Fraction of FLOPs in depthwise convolutions — the share a
    /// FLOP-linear device model mis-prices the most.
    pub fn depthwise_fraction(&self) -> f64 {
        let total = self.total_flops();
        if total == 0 {
            0.0
        } else {
            self.depthwise_flops as f64 / total as f64
        }
    }
}

/// Compute the per-class breakdown of a graph.
pub fn cost_breakdown(graph: &DnnGraph) -> CostBreakdown {
    let mut b = CostBreakdown::default();
    for node in graph.nodes() {
        match node.layer.cost_class() {
            CostClass::DenseCompute => {
                b.dense_flops += node.flops;
                b.dense_layers += 1;
            }
            CostClass::Depthwise => {
                b.depthwise_flops += node.flops;
                b.depthwise_layers += 1;
            }
            CostClass::MemoryBound => {
                b.memory_flops += node.flops;
                b.memory_layers += 1;
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind as L;
    use crate::tensor::TensorShape as S;

    #[test]
    fn breakdown_partitions_total() {
        let mut builder = DnnGraph::builder("b");
        let i = builder.input(S::chw(8, 16, 16));
        builder.chain(
            i,
            [
                L::conv(16, 3, 1, 1),
                L::Act(crate::Activation::ReLU),
                L::depthwise(16, 3, 1, 1),
                L::maxpool(2, 2),
                L::dense(10),
            ],
        );
        let g = builder.build().unwrap();
        let b = cost_breakdown(&g);
        assert_eq!(b.total_flops(), g.total_flops());
        assert_eq!(b.dense_layers, 2); // conv + dense
        assert_eq!(b.depthwise_layers, 1);
        assert_eq!(b.memory_layers, 3); // input + relu + pool
        assert!(b.depthwise_fraction() > 0.0 && b.depthwise_fraction() < 1.0);
    }

    #[test]
    fn pure_dense_graph_has_zero_depthwise_fraction() {
        let mut builder = DnnGraph::builder("d");
        let i = builder.input(S::flat(32));
        builder.chain(i, [L::dense(16), L::dense(8)]);
        let g = builder.build().unwrap();
        assert_eq!(cost_breakdown(&g).depthwise_fraction(), 0.0);
    }
}
