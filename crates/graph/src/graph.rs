//! The DNN DAG: nodes, edges, validation and structural queries.
//!
//! Construction goes through [`GraphBuilder`], which wires layers
//! together and then [`GraphBuilder::build`]s a validated [`DnnGraph`]:
//! acyclic, arity-checked, shape-inferred, with nodes stored in a fixed
//! topological order so downstream algorithms can iterate cheaply.

use crate::error::GraphError;
use crate::layer::LayerKind;
use crate::tensor::{DType, TensorShape};

/// Index of a node in a [`DnnGraph`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// A validated node: its layer, inferred output shape and cost metrics.
#[derive(Debug, Clone)]
pub struct Node {
    /// The layer payload.
    pub layer: LayerKind,
    /// Optional human-readable name (e.g. `"conv1"`).
    pub name: String,
    /// Inferred output tensor shape.
    pub output: TensorShape,
    /// FLOPs to compute this layer once.
    pub flops: u64,
    /// Trainable parameter count.
    pub params: usize,
}

/// A layer-level DNN DAG (paper §3.1, Fig. 3).
///
/// Nodes are stored in topological order: for every edge `(u, v)`,
/// `u.index() < v.index()`. Edges carry no explicit weight — the
/// communication volume of cutting edge `(u, v)` is
/// `graph.node(u).output.bytes(dtype)`.
#[derive(Debug, Clone)]
pub struct DnnGraph {
    name: String,
    nodes: Vec<Node>,
    /// Outgoing adjacency, indexed by node.
    succ: Vec<Vec<NodeId>>,
    /// Incoming adjacency, indexed by node.
    pred: Vec<Vec<NodeId>>,
    dtype: DType,
}

impl DnnGraph {
    /// Start building a graph with the given name.
    pub fn builder(name: impl Into<String>) -> GraphBuilder {
        GraphBuilder::new(name)
    }

    /// Model name (e.g. `"alexnet"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element type of all activations.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Number of nodes (`|V|`, the paper's `k` for line structures).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node payload by id. Panics on out-of-range ids (ids are only ever
    /// minted by this graph's builder).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterate `(id, node)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Successors of a node.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succ[id.0]
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.pred[id.0]
    }

    /// All edges `(u, v)` in topological order of `u`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (NodeId(u), v)))
    }

    /// Nodes with no predecessors (the network inputs).
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.pred[i].is_empty())
            .map(NodeId)
            .collect()
    }

    /// Nodes with no successors (the network outputs).
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.succ[i].is_empty())
            .map(NodeId)
            .collect()
    }

    /// Total FLOPs of one full inference.
    pub fn total_flops(&self) -> u64 {
        self.nodes.iter().map(|n| n.flops).sum()
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> usize {
        self.nodes.iter().map(|n| n.params).sum()
    }

    /// Byte size of the network input tensor (what cloud-only execution
    /// must upload). Sums over all sources.
    pub fn input_bytes(&self) -> usize {
        self.sources()
            .iter()
            .map(|&s| self.node(s).output.bytes(self.dtype))
            .sum()
    }

    /// True when every node has ≤ 1 predecessor and ≤ 1 successor — the
    /// paper's *line structure* (Fig. 3(b)), for which a partition is a
    /// single cut-point.
    pub fn is_line_structure(&self) -> bool {
        self.first_branch().is_none()
    }

    /// First node (in topo order) with more than one predecessor or
    /// successor, if any.
    pub fn first_branch(&self) -> Option<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .find(|&id| self.succ[id.0].len() > 1 || self.pred[id.0].len() > 1)
    }

    /// The set of nodes that run on the mobile device for partition set
    /// `cut_points`: every cut-point and all its predecessors (paper
    /// §3.1). Returned as a boolean mask indexed by node.
    pub fn mobile_side(&self, cut_points: &[NodeId]) -> Vec<bool> {
        let mut on_mobile = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = cut_points.to_vec();
        while let Some(v) = stack.pop() {
            if on_mobile[v.0] {
                continue;
            }
            on_mobile[v.0] = true;
            stack.extend_from_slice(&self.pred[v.0]);
        }
        on_mobile
    }

    /// Bytes that must be offloaded for partition set `cut_points`: the
    /// sum of output sizes of mobile-side nodes that have at least one
    /// cloud-side successor (or are sinks consumed by the cloud-side
    /// classifier). Cut-points with no successors still upload their
    /// output (the inference result flows through them).
    pub fn offload_bytes(&self, cut_points: &[NodeId]) -> usize {
        let on_mobile = self.mobile_side(cut_points);
        let mut total = 0usize;
        for (i, &mobile) in on_mobile.iter().enumerate() {
            if !mobile {
                continue;
            }
            let crosses = self.succ[i].iter().any(|s| !on_mobile[s.0]);
            if crosses {
                total += self.nodes[i].output.bytes(self.dtype);
            }
        }
        total
    }

    /// FLOPs executed on the mobile device for partition set `cut_points`.
    pub fn mobile_flops(&self, cut_points: &[NodeId]) -> u64 {
        self.mobile_side(cut_points)
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| self.nodes[i].flops)
            .sum()
    }

    /// FLOPs executed on the cloud for partition set `cut_points`.
    pub fn cloud_flops(&self, cut_points: &[NodeId]) -> u64 {
        self.total_flops() - self.mobile_flops(cut_points)
    }
}

/// Incremental builder for [`DnnGraph`].
///
/// ```
/// use mcdnn_graph::{DnnGraph, LayerKind, TensorShape};
///
/// let mut b = DnnGraph::builder("tiny");
/// let input = b.input(TensorShape::chw(3, 32, 32));
/// let conv = b.layer_after(input, LayerKind::conv(8, 3, 1, 1));
/// let pool = b.layer_after(conv, LayerKind::maxpool(2, 2));
/// let out = b.layer_after(pool, LayerKind::dense(10));
/// let g = b.build().unwrap();
/// assert_eq!(g.len(), 4);
/// assert!(g.is_line_structure());
/// assert_eq!(g.sinks(), vec![out]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    layers: Vec<(LayerKind, String)>,
    edges: Vec<(NodeId, NodeId)>,
    dtype: DType,
    auto_names: usize,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            layers: Vec::new(),
            edges: Vec::new(),
            dtype: DType::F32,
            auto_names: 0,
        }
    }

    /// Set the activation element type (default [`DType::F32`]).
    pub fn dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Add an input node with the given tensor shape.
    pub fn input(&mut self, shape: TensorShape) -> NodeId {
        self.add_named(LayerKind::Input { shape }, "input")
    }

    /// Add a free-standing layer (connect it later with [`Self::connect`]).
    pub fn add(&mut self, layer: LayerKind) -> NodeId {
        self.auto_names += 1;
        let name = format!("{}{}", layer.name(), self.auto_names);
        self.add_named(layer, name)
    }

    /// Add a layer with an explicit name.
    pub fn add_named(&mut self, layer: LayerKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.layers.len());
        self.layers.push((layer, name.into()));
        id
    }

    /// Add a layer and connect it after a single predecessor.
    pub fn layer_after(&mut self, prev: NodeId, layer: LayerKind) -> NodeId {
        let id = self.add(layer);
        self.edges.push((prev, id));
        id
    }

    /// Add a layer consuming several predecessors (for Concat/Add).
    pub fn merge(&mut self, prevs: &[NodeId], layer: LayerKind) -> NodeId {
        let id = self.add(layer);
        for &p in prevs {
            self.edges.push((p, id));
        }
        id
    }

    /// Add an explicit edge.
    pub fn connect(&mut self, from: NodeId, to: NodeId) {
        self.edges.push((from, to));
    }

    /// Append a chain of layers after `prev`, returning the last node.
    pub fn chain(&mut self, mut prev: NodeId, layers: impl IntoIterator<Item = LayerKind>) -> NodeId {
        for l in layers {
            prev = self.layer_after(prev, l);
        }
        prev
    }

    /// Validate and freeze the graph.
    ///
    /// Checks: ids in range, no duplicate edges, acyclicity, arity,
    /// shape inference; relabels nodes into topological order.
    pub fn build(self) -> Result<DnnGraph, GraphError> {
        let n = self.layers.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for &(u, v) in &self.edges {
            if u.0 >= n {
                return Err(GraphError::UnknownNode(u));
            }
            if v.0 >= n {
                return Err(GraphError::UnknownNode(v));
            }
            if succ[u.0].contains(&v) {
                return Err(GraphError::DuplicateEdge { from: u, to: v });
            }
            succ[u.0].push(v);
            pred[v.0].push(u);
        }

        // Kahn's algorithm; stable (prefers lower original ids) so that
        // builder insertion order is preserved for already-sorted input.
        let mut indeg: Vec<usize> = pred.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        // Min-heap behaviour via sort+pop from the back of a reversed vec.
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        while let Some(u) = ready.pop() {
            topo.push(u);
            for &v in &succ[u] {
                indeg[v.0] -= 1;
                if indeg[v.0] == 0 {
                    // Insert keeping `ready` sorted descending.
                    let pos = ready
                        .binary_search_by(|x| v.0.cmp(x))
                        .unwrap_or_else(|p| p);
                    ready.insert(pos, v.0);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::CycleDetected);
        }
        if self.layers[topo[0]].0.arity() != Some(0) && pred[topo[0]].is_empty() {
            // A source that is not an Input layer: allowed only for
            // synthetic graphs; shape inference below will reject it if
            // the layer needs an input.
        }
        let any_source = (0..n).any(|i| pred[i].is_empty());
        if !any_source {
            return Err(GraphError::NoSource);
        }

        // old id -> new id
        let mut remap = vec![0usize; n];
        for (new, &old) in topo.iter().enumerate() {
            remap[old] = new;
        }

        let mut nodes: Vec<Node> = Vec::with_capacity(n);
        let mut new_succ = vec![Vec::new(); n];
        let mut new_pred = vec![Vec::new(); n];
        for (new, &old) in topo.iter().enumerate() {
            let (layer, name) = self.layers[old].clone();
            // Gather input shapes from already-built predecessors.
            let mut preds: Vec<usize> = pred[old].iter().map(|p| remap[p.0]).collect();
            preds.sort_unstable();
            let input_shapes: Vec<TensorShape> =
                preds.iter().map(|&p| nodes[p].output).collect();
            if let Some(expected) = layer.arity() {
                if input_shapes.len() != expected {
                    return Err(GraphError::ArityMismatch {
                        node: NodeId(new),
                        expected: Some(expected),
                        actual: input_shapes.len(),
                    });
                }
            } else if input_shapes.len() < 2 {
                return Err(GraphError::ArityMismatch {
                    node: NodeId(new),
                    expected: None,
                    actual: input_shapes.len(),
                });
            }
            let output = layer
                .infer_shape(&input_shapes)
                .map_err(|reason| GraphError::ShapeMismatch {
                    node: NodeId(new),
                    reason,
                })?;
            let flops = layer.flops(&input_shapes);
            let params = layer.params(&input_shapes);
            nodes.push(Node {
                layer,
                name,
                output,
                flops,
                params,
            });
            for &p in &preds {
                new_pred[new].push(NodeId(p));
                new_succ[p].push(NodeId(new));
            }
        }
        for s in &mut new_succ {
            s.sort_unstable();
        }

        Ok(DnnGraph {
            name: self.name,
            nodes,
            succ: new_succ,
            pred: new_pred,
            dtype: self.dtype,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind as L;
    use crate::tensor::TensorShape as S;

    fn tiny_line() -> DnnGraph {
        let mut b = DnnGraph::builder("tiny");
        let i = b.input(S::chw(3, 32, 32));
        b.chain(
            i,
            [
                L::conv(8, 3, 1, 1),
                L::maxpool(2, 2),
                L::Flatten,
                L::dense(10),
            ],
        );
        b.build().unwrap()
    }

    fn diamond() -> DnnGraph {
        // input -> {a, b} -> concat
        let mut b = DnnGraph::builder("diamond");
        let i = b.input(S::chw(8, 16, 16));
        let a = b.layer_after(i, L::pointwise(4));
        let c = b.layer_after(i, L::pointwise(12));
        b.merge(&[a, c], L::Concat);
        b.build().unwrap()
    }

    #[test]
    fn topological_order_invariant() {
        let g = diamond();
        for (u, v) in g.edges() {
            assert!(u < v, "edge {u:?}->{v:?} violates topo order");
        }
    }

    #[test]
    fn line_structure_detection() {
        assert!(tiny_line().is_line_structure());
        assert!(!diamond().is_line_structure());
    }

    #[test]
    fn shapes_propagate() {
        let g = tiny_line();
        let shapes: Vec<_> = g.nodes().iter().map(|n| n.output).collect();
        assert_eq!(
            shapes,
            vec![
                S::chw(3, 32, 32),
                S::chw(8, 32, 32),
                S::chw(8, 16, 16),
                S::flat(8 * 16 * 16),
                S::flat(10),
            ]
        );
    }

    #[test]
    fn diamond_concat_shape() {
        let g = diamond();
        let sink = g.sinks()[0];
        assert_eq!(g.node(sink).output, S::chw(16, 16, 16));
    }

    #[test]
    fn cycle_detected() {
        let mut b = DnnGraph::builder("cyc");
        let i = b.input(S::flat(4));
        let a = b.layer_after(i, L::Act(crate::Activation::ReLU));
        let c = b.layer_after(a, L::Act(crate::Activation::ReLU));
        b.connect(c, a); // back edge
        assert_eq!(b.build().unwrap_err(), GraphError::CycleDetected);
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(
            DnnGraph::builder("e").build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = DnnGraph::builder("u");
        let i = b.input(S::flat(4));
        b.connect(i, NodeId(99));
        assert!(matches!(b.build(), Err(GraphError::UnknownNode(_))));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = DnnGraph::builder("d");
        let i = b.input(S::flat(4));
        let a = b.layer_after(i, L::Act(crate::Activation::ReLU));
        b.connect(i, a);
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge { .. })));
    }

    #[test]
    fn arity_checked() {
        let mut b = DnnGraph::builder("a");
        let i = b.input(S::chw(4, 8, 8));
        b.merge(&[i], L::Concat); // concat with 1 input
        assert!(matches!(b.build(), Err(GraphError::ArityMismatch { .. })));
    }

    #[test]
    fn mobile_side_closure() {
        let g = diamond();
        // Cutting at node 1 (one branch) pulls in the input too.
        let mask = g.mobile_side(&[NodeId(1)]);
        assert_eq!(mask, vec![true, true, false, false]);
    }

    #[test]
    fn offload_bytes_single_cut_line() {
        let g = tiny_line();
        // Cut after maxpool (node 2): offload its output 8*16*16*4 bytes.
        assert_eq!(g.offload_bytes(&[NodeId(2)]), 8 * 16 * 16 * 4);
    }

    #[test]
    fn offload_bytes_multi_cut() {
        let g = diamond();
        // Cut both branches: upload both branch outputs.
        let bytes = g.offload_bytes(&[NodeId(1), NodeId(2)]);
        assert_eq!(bytes, (4 + 12) * 16 * 16 * 4);
    }

    #[test]
    fn sink_cut_uploads_result() {
        let g = tiny_line();
        let sink = g.sinks()[0];
        // Everything on mobile; the final 10-float logits are offloaded.
        assert_eq!(g.offload_bytes(&[sink]), 0); // sink has no successors
        assert_eq!(g.mobile_flops(&[sink]), g.total_flops());
        assert_eq!(g.cloud_flops(&[sink]), 0);
    }

    #[test]
    fn flops_partition_conservation() {
        let g = tiny_line();
        for i in 0..g.len() {
            let cut = [NodeId(i)];
            assert_eq!(
                g.mobile_flops(&cut) + g.cloud_flops(&cut),
                g.total_flops()
            );
        }
    }

    #[test]
    fn input_bytes() {
        let g = tiny_line();
        assert_eq!(g.input_bytes(), 3 * 32 * 32 * 4);
    }

    #[test]
    fn builder_doc_example_runs() {
        // Mirrors the doctest to keep it compiling under test too.
        let mut b = DnnGraph::builder("tiny");
        let input = b.input(S::chw(3, 32, 32));
        let conv = b.layer_after(input, L::conv(8, 3, 1, 1));
        let _pool = b.layer_after(conv, L::maxpool(2, 2));
        let g = b.build().unwrap();
        assert!(g.is_line_structure());
    }

    #[test]
    fn out_of_order_insertion_is_topo_sorted() {
        // Build edges "backwards": add nodes first, connect arbitrarily.
        let mut b = DnnGraph::builder("ooo");
        let d = b.add(L::dense(10));
        let r = b.add(L::Act(crate::Activation::ReLU));
        let i = b.input(S::flat(20));
        b.connect(i, r);
        b.connect(r, d);
        let g = b.build().unwrap();
        assert_eq!(g.node(NodeId(0)).layer.name(), "input");
        assert_eq!(g.node(NodeId(2)).layer.name(), "dense");
        for (u, v) in g.edges() {
            assert!(u < v);
        }
    }
}
