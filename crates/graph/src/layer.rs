//! Layer taxonomy with shape inference, parameter counts and FLOP counts.
//!
//! The partition/scheduling algorithms never look inside a layer — they
//! only need (a) the byte size of each layer's output tensor (offloading
//! volume if the cut is placed after the layer) and (b) a compute cost.
//! FLOP counts are the standard architecture-independent compute measure;
//! the profile crate converts them into device-specific time.
//!
//! FLOP conventions follow the usual literature accounting: one
//! multiply-accumulate = 2 FLOPs for conv/dense; pooling, activations and
//! element-wise ops cost ~1 FLOP per output (or per window element for
//! pooling).

use crate::tensor::TensorShape;

/// Activation function applied element-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit.
    ReLU,
    /// ReLU clipped at 6 (MobileNet family).
    ReLU6,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

/// Pooling operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// One DNN layer (a DAG node payload).
///
/// Shape inference ([`LayerKind::infer_shape`]) maps input shape(s) to the
/// output shape; [`LayerKind::flops`] and [`LayerKind::params`] give the
/// compute and weight volume given the *input* shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Network input placeholder carrying the image tensor shape.
    Input {
        /// Shape of the input tensor (e.g. `[3, 224, 224]`).
        shape: TensorShape,
    },
    /// 2-D convolution.
    Conv2d {
        /// Output channel count.
        out_channels: usize,
        /// Square kernel side length.
        kernel: usize,
        /// Stride (same in both spatial dims).
        stride: usize,
        /// Zero padding on each side.
        padding: usize,
        /// Channel groups; `groups == in_channels` is a depthwise conv.
        groups: usize,
        /// Whether a bias vector is added.
        bias: bool,
    },
    /// Spatial pooling.
    Pool2d {
        /// Max or average.
        kind: PoolKind,
        /// Square window side length.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Global average pooling: collapses `[C, H, W]` to `[C, 1, 1]`.
    GlobalAvgPool,
    /// Fully-connected layer over a flattened input.
    Dense {
        /// Output feature count.
        out_features: usize,
        /// Whether a bias vector is added.
        bias: bool,
    },
    /// Element-wise activation.
    Act(Activation),
    /// Batch normalization (2 params per channel at inference).
    BatchNorm,
    /// Local response normalization (AlexNet-era).
    Lrn,
    /// Dropout — identity at inference time, zero cost, kept so model
    /// definitions can mirror published architectures.
    Dropout,
    /// Flatten `[C, H, W]` into `[C*H*W]`.
    Flatten,
    /// Channel concatenation of ≥ 2 feature maps (Inception `Filter
    /// Concat`, paper Fig. 3(a)).
    Concat,
    /// Element-wise addition of ≥ 2 identically-shaped tensors (residual
    /// bypass links, paper Fig. 10).
    Add,
    /// Softmax over a flat vector.
    Softmax,
}

/// Broad execution-efficiency class of a layer, for device models that
/// do not execute all layer kinds at the same FLOP rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Dense GEMM-like work (full convolutions, fully-connected): runs
    /// near the device's peak FLOP rate.
    DenseCompute,
    /// Grouped/depthwise convolutions: memory-bound, far below peak on
    /// CPUs (the classic MobileNet-on-ARM effect).
    Depthwise,
    /// Element-wise / pooling / normalization: bandwidth-bound, cheap
    /// in FLOPs but not *that* cheap in time.
    MemoryBound,
}

impl LayerKind {
    /// The execution-efficiency class of this layer (see [`CostClass`]).
    pub fn cost_class(&self) -> CostClass {
        match self {
            LayerKind::Conv2d { groups, .. } if *groups > 1 => CostClass::Depthwise,
            LayerKind::Conv2d { .. } | LayerKind::Dense { .. } => CostClass::DenseCompute,
            _ => CostClass::MemoryBound,
        }
    }

    /// Number of input tensors the layer consumes.
    ///
    /// `Some(n)` for fixed arity; `None` for variadic layers
    /// ([`LayerKind::Concat`], [`LayerKind::Add`]) which require ≥ 2.
    pub fn arity(&self) -> Option<usize> {
        match self {
            LayerKind::Input { .. } => Some(0),
            LayerKind::Concat | LayerKind::Add => None,
            _ => Some(1),
        }
    }

    /// Infer the output shape from the input shapes.
    ///
    /// Returns `Err(reason)` with a human-readable message when the input
    /// is incompatible; the graph layer wraps it into
    /// [`crate::GraphError::ShapeMismatch`].
    pub fn infer_shape(&self, inputs: &[TensorShape]) -> Result<TensorShape, String> {
        match self {
            LayerKind::Input { shape } => {
                if inputs.is_empty() {
                    Ok(*shape)
                } else {
                    Err(format!("input layer takes no inputs, got {}", inputs.len()))
                }
            }
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
                ..
            } => {
                let one = expect_one(inputs)?;
                let TensorShape::Chw { c, h, w } = one else {
                    return Err(format!("conv2d requires a CHW input, got {one}"));
                };
                if c % groups != 0 {
                    return Err(format!("in_channels {c} not divisible by groups {groups}"));
                }
                if out_channels % groups != 0 {
                    return Err(format!(
                        "out_channels {out_channels} not divisible by groups {groups}"
                    ));
                }
                let oh = conv_out(h, *kernel, *stride, *padding)?;
                let ow = conv_out(w, *kernel, *stride, *padding)?;
                Ok(TensorShape::chw(*out_channels, oh, ow))
            }
            LayerKind::Pool2d {
                kernel,
                stride,
                padding,
                ..
            } => {
                let one = expect_one(inputs)?;
                let TensorShape::Chw { c, h, w } = one else {
                    return Err(format!("pool2d requires a CHW input, got {one}"));
                };
                let oh = conv_out(h, *kernel, *stride, *padding)?;
                let ow = conv_out(w, *kernel, *stride, *padding)?;
                Ok(TensorShape::chw(c, oh, ow))
            }
            LayerKind::GlobalAvgPool => {
                let one = expect_one(inputs)?;
                let TensorShape::Chw { c, .. } = one else {
                    return Err(format!("global avg pool requires a CHW input, got {one}"));
                };
                Ok(TensorShape::chw(c, 1, 1))
            }
            LayerKind::Dense { out_features, .. } => {
                let one = expect_one(inputs)?;
                // Dense layers implicitly flatten spatial inputs, matching
                // framework behaviour when a Flatten node is omitted.
                let _ = one.elements();
                Ok(TensorShape::flat(*out_features))
            }
            LayerKind::Act(_)
            | LayerKind::BatchNorm
            | LayerKind::Lrn
            | LayerKind::Dropout
            | LayerKind::Softmax => Ok(expect_one(inputs)?),
            LayerKind::Flatten => Ok(expect_one(inputs)?.flattened()),
            LayerKind::Concat => {
                if inputs.len() < 2 {
                    return Err(format!("concat requires >= 2 inputs, got {}", inputs.len()));
                }
                let (h0, w0) = inputs[0].spatial();
                let mut c_total = 0usize;
                for s in inputs {
                    let TensorShape::Chw { c, h, w } = *s else {
                        return Err(format!("concat requires CHW inputs, got {s}"));
                    };
                    if (h, w) != (h0, w0) {
                        return Err(format!(
                            "concat spatial mismatch: [{h}, {w}] vs [{h0}, {w0}]"
                        ));
                    }
                    c_total += c;
                }
                Ok(TensorShape::chw(c_total, h0, w0))
            }
            LayerKind::Add => {
                if inputs.len() < 2 {
                    return Err(format!("add requires >= 2 inputs, got {}", inputs.len()));
                }
                let first = inputs[0];
                for s in &inputs[1..] {
                    if *s != first {
                        return Err(format!("add shape mismatch: {s} vs {first}"));
                    }
                }
                Ok(first)
            }
        }
    }

    /// Trainable parameter count given the input shape(s).
    pub fn params(&self, inputs: &[TensorShape]) -> usize {
        match self {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                groups,
                bias,
                ..
            } => {
                let c_in = inputs.first().map_or(0, TensorShape::channels);
                let weights = (c_in / groups) * out_channels * kernel * kernel;
                weights + if *bias { *out_channels } else { 0 }
            }
            LayerKind::Dense { out_features, bias } => {
                let n_in = inputs.first().map_or(0, TensorShape::elements);
                n_in * out_features + if *bias { *out_features } else { 0 }
            }
            LayerKind::BatchNorm => {
                // scale + shift per channel (running stats folded in).
                2 * inputs.first().map_or(0, TensorShape::channels)
            }
            _ => 0,
        }
    }

    /// Floating-point operation count given the input shape(s).
    ///
    /// Uses the 1 MAC = 2 FLOPs convention; cheap element-wise layers
    /// count 1 FLOP per element so their (small but real) cost is visible
    /// to the device model.
    pub fn flops(&self, inputs: &[TensorShape]) -> u64 {
        let out = match self.infer_shape(inputs) {
            Ok(s) => s,
            Err(_) => return 0,
        };
        match self {
            LayerKind::Input { .. } | LayerKind::Dropout => 0,
            LayerKind::Conv2d {
                out_channels,
                kernel,
                groups,
                bias,
                ..
            } => {
                let c_in = inputs[0].channels();
                let (oh, ow) = out.spatial();
                let macs = (c_in / groups) as u64
                    * *out_channels as u64
                    * (*kernel as u64).pow(2)
                    * oh as u64
                    * ow as u64;
                2 * macs + if *bias { out.elements() as u64 } else { 0 }
            }
            LayerKind::Pool2d { kernel, .. } => {
                out.elements() as u64 * (*kernel as u64).pow(2)
            }
            LayerKind::GlobalAvgPool => inputs[0].elements() as u64,
            LayerKind::Dense { out_features, bias } => {
                let n_in = inputs[0].elements() as u64;
                2 * n_in * *out_features as u64
                    + if *bias { *out_features as u64 } else { 0 }
            }
            LayerKind::Act(_) | LayerKind::Flatten => out.elements() as u64,
            // Inference-time batchnorm is a fused scale+shift: 2 FLOPs/elt.
            LayerKind::BatchNorm => 2 * out.elements() as u64,
            // LRN reads a 5-channel neighbourhood per output element.
            LayerKind::Lrn => 5 * out.elements() as u64,
            LayerKind::Concat => 0, // pure memory movement
            LayerKind::Add => {
                out.elements() as u64 * (inputs.len() as u64 - 1)
            }
            // exp + sum + div per element ≈ 3 FLOPs.
            LayerKind::Softmax => 3 * out.elements() as u64,
        }
    }

    /// Short lowercase name used in graph dumps and DOT output.
    pub fn name(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "input",
            LayerKind::Conv2d { groups, .. } if *groups > 1 => "conv_grouped",
            LayerKind::Conv2d { .. } => "conv",
            LayerKind::Pool2d {
                kind: PoolKind::Max,
                ..
            } => "maxpool",
            LayerKind::Pool2d {
                kind: PoolKind::Avg,
                ..
            } => "avgpool",
            LayerKind::GlobalAvgPool => "gavgpool",
            LayerKind::Dense { .. } => "dense",
            LayerKind::Act(Activation::ReLU) => "relu",
            LayerKind::Act(Activation::ReLU6) => "relu6",
            LayerKind::Act(Activation::Sigmoid) => "sigmoid",
            LayerKind::Act(Activation::Tanh) => "tanh",
            LayerKind::BatchNorm => "batchnorm",
            LayerKind::Lrn => "lrn",
            LayerKind::Dropout => "dropout",
            LayerKind::Flatten => "flatten",
            LayerKind::Concat => "concat",
            LayerKind::Add => "add",
            LayerKind::Softmax => "softmax",
        }
    }

    /// Convenience: a standard conv with bias, groups = 1.
    pub fn conv(out_channels: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        LayerKind::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
            groups: 1,
            bias: true,
        }
    }

    /// Convenience: a 1×1 "pointwise" conv (no bias, as used before BN).
    pub fn pointwise(out_channels: usize) -> Self {
        LayerKind::Conv2d {
            out_channels,
            kernel: 1,
            stride: 1,
            padding: 0,
            groups: 1,
            bias: false,
        }
    }

    /// Convenience: a depthwise conv over `channels` channels.
    pub fn depthwise(channels: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        LayerKind::Conv2d {
            out_channels: channels,
            kernel,
            stride,
            padding,
            groups: channels,
            bias: false,
        }
    }

    /// Convenience: max pooling.
    pub fn maxpool(kernel: usize, stride: usize) -> Self {
        LayerKind::Pool2d {
            kind: PoolKind::Max,
            kernel,
            stride,
            padding: 0,
        }
    }

    /// Convenience: average pooling.
    pub fn avgpool(kernel: usize, stride: usize) -> Self {
        LayerKind::Pool2d {
            kind: PoolKind::Avg,
            kernel,
            stride,
            padding: 0,
        }
    }

    /// Convenience: dense with bias.
    pub fn dense(out_features: usize) -> Self {
        LayerKind::Dense {
            out_features,
            bias: true,
        }
    }
}

/// Floor-division output size of a conv/pool window sweep.
fn conv_out(input: usize, kernel: usize, stride: usize, padding: usize) -> Result<usize, String> {
    if stride == 0 {
        return Err("stride must be >= 1".to_string());
    }
    if kernel == 0 {
        return Err("kernel must be >= 1".to_string());
    }
    let padded = input + 2 * padding;
    if padded < kernel {
        return Err(format!(
            "kernel {kernel} larger than padded input {padded} ({input}+2*{padding})"
        ));
    }
    Ok((padded - kernel) / stride + 1)
}

fn expect_one(inputs: &[TensorShape]) -> Result<TensorShape, String> {
    match inputs {
        [one] => Ok(*one),
        _ => Err(format!("expected exactly 1 input, got {}", inputs.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorShape as S;

    #[test]
    fn conv_output_size_alexnet_first_layer() {
        // AlexNet conv1: 96 kernels 11x11 stride 4 on 227x227x3 -> 55x55x96.
        let conv = LayerKind::conv(96, 11, 4, 0);
        let out = conv.infer_shape(&[S::chw(3, 227, 227)]).unwrap();
        assert_eq!(out, S::chw(96, 55, 55));
    }

    #[test]
    fn conv_with_padding() {
        // 3x3 stride 1 pad 1 preserves spatial dims.
        let conv = LayerKind::conv(64, 3, 1, 1);
        let out = conv.infer_shape(&[S::chw(3, 224, 224)]).unwrap();
        assert_eq!(out, S::chw(64, 224, 224));
    }

    #[test]
    fn depthwise_conv_shapes_and_params() {
        let dw = LayerKind::depthwise(144, 3, 1, 1);
        let input = S::chw(144, 56, 56);
        assert_eq!(dw.infer_shape(&[input]).unwrap(), S::chw(144, 56, 56));
        // Depthwise params: 1 * k*k per channel.
        assert_eq!(dw.params(&[input]), 144 * 9);
    }

    #[test]
    fn conv_flops_macs_convention() {
        // 1x1 conv, 8 in channels, 16 out, 10x10 spatial, no bias:
        // MACs = 8*16*1*1*10*10 = 12800, FLOPs = 25600.
        let c = LayerKind::pointwise(16);
        assert_eq!(c.flops(&[S::chw(8, 10, 10)]), 25_600);
    }

    #[test]
    fn grouped_conv_divides_flops() {
        let full = LayerKind::Conv2d {
            out_channels: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
            bias: false,
        };
        let grouped = LayerKind::Conv2d {
            out_channels: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 4,
            bias: false,
        };
        let input = S::chw(32, 14, 14);
        assert_eq!(full.flops(&[input]), 4 * grouped.flops(&[input]));
    }

    #[test]
    fn pooling_shrinks_output() {
        let p = LayerKind::maxpool(3, 2);
        let out = p.infer_shape(&[S::chw(96, 55, 55)]).unwrap();
        assert_eq!(out, S::chw(96, 27, 27));
    }

    #[test]
    fn global_avg_pool_collapses_spatial() {
        let g = LayerKind::GlobalAvgPool;
        assert_eq!(
            g.infer_shape(&[S::chw(1024, 7, 7)]).unwrap(),
            S::chw(1024, 1, 1)
        );
    }

    #[test]
    fn dense_flattens_implicitly() {
        let d = LayerKind::dense(4096);
        let out = d.infer_shape(&[S::chw(256, 6, 6)]).unwrap();
        assert_eq!(out, S::flat(4096));
        assert_eq!(d.params(&[S::chw(256, 6, 6)]), 256 * 6 * 6 * 4096 + 4096);
    }

    #[test]
    fn dense_flops() {
        let d = LayerKind::Dense {
            out_features: 10,
            bias: false,
        };
        assert_eq!(d.flops(&[S::flat(100)]), 2 * 100 * 10);
    }

    #[test]
    fn concat_sums_channels() {
        let c = LayerKind::Concat;
        let out = c
            .infer_shape(&[S::chw(64, 28, 28), S::chw(96, 28, 28), S::chw(32, 28, 28)])
            .unwrap();
        assert_eq!(out, S::chw(192, 28, 28));
    }

    #[test]
    fn concat_rejects_spatial_mismatch() {
        let c = LayerKind::Concat;
        assert!(c
            .infer_shape(&[S::chw(64, 28, 28), S::chw(96, 27, 27)])
            .is_err());
    }

    #[test]
    fn concat_rejects_single_input() {
        assert!(LayerKind::Concat.infer_shape(&[S::chw(64, 28, 28)]).is_err());
    }

    #[test]
    fn add_requires_identical_shapes() {
        let a = LayerKind::Add;
        assert_eq!(
            a.infer_shape(&[S::chw(24, 56, 56), S::chw(24, 56, 56)])
                .unwrap(),
            S::chw(24, 56, 56)
        );
        assert!(a
            .infer_shape(&[S::chw(24, 56, 56), S::chw(25, 56, 56)])
            .is_err());
    }

    #[test]
    fn elementwise_layers_preserve_shape() {
        let input = S::chw(256, 13, 13);
        for k in [
            LayerKind::Act(Activation::ReLU),
            LayerKind::BatchNorm,
            LayerKind::Lrn,
            LayerKind::Dropout,
        ] {
            assert_eq!(k.infer_shape(&[input]).unwrap(), input);
        }
    }

    #[test]
    fn flatten_shape() {
        assert_eq!(
            LayerKind::Flatten.infer_shape(&[S::chw(256, 6, 6)]).unwrap(),
            S::flat(9216)
        );
    }

    #[test]
    fn kernel_larger_than_input_is_error() {
        let conv = LayerKind::conv(8, 7, 1, 0);
        assert!(conv.infer_shape(&[S::chw(3, 5, 5)]).is_err());
    }

    #[test]
    fn zero_stride_is_error() {
        let conv = LayerKind::conv(8, 3, 0, 0);
        assert!(conv.infer_shape(&[S::chw(3, 16, 16)]).is_err());
    }

    #[test]
    fn conv_rejects_flat_input() {
        assert!(LayerKind::conv(8, 3, 1, 0).infer_shape(&[S::flat(100)]).is_err());
    }

    #[test]
    fn arity() {
        assert_eq!(LayerKind::Concat.arity(), None);
        assert_eq!(LayerKind::Add.arity(), None);
        assert_eq!(LayerKind::conv(1, 1, 1, 0).arity(), Some(1));
        assert_eq!(
            LayerKind::Input {
                shape: S::flat(1)
            }
            .arity(),
            Some(0)
        );
    }

    #[test]
    fn input_layer_zero_flops() {
        let inp = LayerKind::Input {
            shape: S::chw(3, 224, 224),
        };
        assert_eq!(inp.flops(&[]), 0);
        assert_eq!(inp.infer_shape(&[]).unwrap(), S::chw(3, 224, 224));
    }

    #[test]
    fn batchnorm_params_per_channel() {
        assert_eq!(LayerKind::BatchNorm.params(&[S::chw(64, 10, 10)]), 128);
    }
}
