//! `mcdnn` binary: thin wrapper over the testable CLI library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mcdnn_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
