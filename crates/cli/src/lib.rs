//! # mcdnn-cli
//!
//! Command-line front end for the planner. All logic lives in this
//! library (returning strings) so it is fully unit-testable; `main.rs`
//! only forwards `std::env::args`.
//!
//! ```text
//! mcdnn models
//! mcdnn profile --model alexnet --bandwidth 18.88
//! mcdnn plan    --model alexnet --bandwidth 18.88 --jobs 10 [--strategy jps]
//! mcdnn compare --model resnet18 --bandwidth 5.85 --jobs 100
//! mcdnn sweep   --model mobilenet_v2 --from 1 --to 40 --steps 8 --jobs 50
//! mcdnn dot     --model squeezenet1_1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use mcdnn::prelude::*;

/// CLI error: message already formatted for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Flags that stand alone — present or absent, never followed by a
/// value. Everything else keeps the strict `--key value` grammar.
const BOOL_FLAGS: &[&str] = &["slo", "adapt"];

/// Parsed flag set: `--key value` pairs after the subcommand.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(err(format!("unexpected argument '{a}' (flags are --key value)")));
            };
            if BOOL_FLAGS.contains(&key) {
                pairs.push((key, "true"));
                continue;
            }
            let Some(value) = it.next() else {
                return Err(err(format!("flag --{key} is missing its value")));
            };
            pairs.push((key, value.as_str()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| err(format!("missing required flag --{key}")))
    }

    fn parse_f64(&self, key: &str) -> Result<f64, CliError> {
        let raw = self.require(key)?;
        raw.parse()
            .map_err(|_| err(format!("--{key} expects a number, got '{raw}'")))
    }

    fn parse_f64_or(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| err(format!("--{key} expects a number, got '{raw}'"))),
        }
    }

    fn parse_usize(&self, key: &str) -> Result<usize, CliError> {
        let raw = self.require(key)?;
        raw.parse()
            .map_err(|_| err(format!("--{key} expects an integer, got '{raw}'")))
    }

    fn parse_usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| err(format!("--{key} expects an integer, got '{raw}'"))),
        }
    }

    fn parse_u64_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| err(format!("--{key} expects an integer, got '{raw}'"))),
        }
    }

    fn model(&self) -> Result<Model, CliError> {
        let raw = self.require("model")?;
        raw.parse().map_err(|e: String| err(e))
    }

    fn strategy_or(&self, default: Strategy) -> Result<Strategy, CliError> {
        match self.get("strategy") {
            None => Ok(default),
            // All strategy-name parsing flows through the one FromStr
            // impl on `Strategy`.
            Some(raw) => raw.parse().map_err(|e: mcdnn::partition::ParseStrategyError| {
                err(e.to_string())
            }),
        }
    }
}

fn scenario(flags: &Flags) -> Result<(Model, Scenario), CliError> {
    let model = flags.model()?;
    let bandwidth = flags.parse_f64("bandwidth")?;
    if bandwidth <= 0.0 {
        return Err(err("--bandwidth must be positive"));
    }
    let setup = flags.parse_f64_or("setup-ms", 10.0)?;
    let net = NetworkModel::new(bandwidth, setup);
    Ok((model, Scenario::paper_default(model, net)))
}

/// Usage text.
pub const USAGE: &str = "\
mcdnn — joint DNN partition and scheduling planner (ICPP'21 reproduction)

USAGE:
  mcdnn models
  mcdnn profile --model <name> --bandwidth <Mbps> [--setup-ms <ms>]
  mcdnn plan    --model <name> --bandwidth <Mbps> --jobs <n>
                [--strategy lo|co|po|jps|jps*|bf] [--setup-ms <ms>]
  mcdnn compare --model <name> --bandwidth <Mbps> --jobs <n> [--setup-ms <ms>]
  mcdnn sweep   --model <name> --from <Mbps> --to <Mbps> --steps <k> --jobs <n>
  mcdnn pareto  --model <name> --bandwidth <Mbps> --jobs <n>
  mcdnn load    --file <model.dnn> --bandwidth <Mbps> --jobs <n>
  mcdnn inspect --model <name>
  mcdnn stream  --model <name> --bandwidth <Mbps> --fps <rate>
  mcdnn hetero  --models <a,b,..> --counts <n1,n2,..> --bandwidth <Mbps>
  mcdnn chaos   --model <name> --bandwidth <Mbps> [--jobs <n>] [--bursts <k>]
                [--fps <rate>] [--rho <frac>] [--seed <s>] [--setup-ms <ms>]
  mcdnn serve   [--users <n>] [--bursts <k>] [--from <Mbps>] [--to <Mbps>]
                [--fault-every <k>] [--seed <s>] [--setup-ms <ms>]
                [--drift <w>] [--adapt]
  mcdnn serve --slo [--users <n>] [--bursts <k>] [--overload <x>]
                [--queue <n>] [--from <Mbps>] [--to <Mbps>] [--seed <s>]
                [--cloud-servers <C>] [--drift <w>] [--adapt]
  mcdnn dot     --model <name>

`plan` also accepts --svg <path> (SVG Gantt chart), --trace <path>
(Chrome trace-event JSON, viewable in Perfetto), --emit-trace <path>
(unified Chrome trace: schedule rows plus recorded planner/executor
spans) and --emit-metrics <path> (JSON snapshot of planner candidate
counts and per-stage busy/wait histograms).

`chaos` fault-sweeps the model: a scenario × degradation-policy grid
(total makespan vs the oracle that knew the fault schedule), then one
seeded random fault drill whose event log and FNV-1a digest are
deterministic in --seed. It accepts --emit-trace <path> (Chrome trace
of the drill: stage rows, fault windows, one flag per fault/recovery
event) and --emit-metrics <path> (JSON snapshot including fault.* /
degrade.* / recovery.* counters).

`serve` runs a multi-tenant fleet — users drawn round-robin from the
model zoo, each with its own seeded bandwidth walk — through the
persistent worker pool and the shared sharded plan cache. Output is
deterministic in --seed (no wall times), whatever MCDNN_THREADS says.
It accepts --emit-metrics <path> (JSON snapshot including serve.* /
frontier.shard.* / runtime.pool.* counters).

`serve --slo` attaches an SLO class (deadline + priority) to every
request and runs the same seeded tenant fleet under both front-end
queue disciplines — fifo (unbounded arrival-order baseline) and
edf-degrade (earliest-deadline-first with weighted fair queueing, a
bounded queue, and degradation-ladder fallback before shedding) — then
reports deadline hit-rates side by side. Virtual time keeps the output
deterministic in --seed at any MCDNN_THREADS. --overload scales the
offered uplink load (2 = twice link capacity); --emit-metrics adds the
sched.* queue/slack/shed counters to the snapshot.

`serve --slo --cloud-servers C` makes the cloud a finite shared pool of
C servers under deterministic processor-sharing: each tenant holds a
static share and its cloud stages stretch accordingly. The run then
compares three schedulers — fifo, contention-oblivious edf-degrade
(frontier cuts + equal shares), and edf-degrade with the joint
cut/share allocator (water-filling + best-response over the bandwidth
frontier) — and reports the joint-vs-oblivious hit-rate gap. Adds the
sched.cloud.* counters to --emit-metrics snapshots.

Both serve modes accept --drift <w> and --adapt. --drift w puts the
*true* device speed, cloud speed and uplink on a seeded multiplicative
random walk of half-width w (link w/2, timing jitter w/4) while the
planner keeps executing its beliefs; --adapt closes the loop with the
online profile estimator (debiased EWMA per layer + sliding-window
upload regression), which re-estimates the profile, bumps its version
and recompiles the frontier at deterministic commit boundaries. Adds
the adapt.* counters to --emit-metrics snapshots. With --drift 0,
--adapt is byte-identical to a non-adaptive run.
";

/// Run the CLI on the given arguments (excluding the program name),
/// returning the full stdout text.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(err(USAGE));
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "models" => cmd_models(),
        "profile" => cmd_profile(&flags),
        "plan" => cmd_plan(&flags),
        "compare" => cmd_compare(&flags),
        "sweep" => cmd_sweep(&flags),
        "pareto" => cmd_pareto(&flags),
        "load" => cmd_load(&flags),
        "inspect" => cmd_inspect(&flags),
        "stream" => cmd_stream(&flags),
        "hetero" => cmd_hetero(&flags),
        "chaos" => cmd_chaos(&flags),
        "serve" => cmd_serve(&flags),
        "dot" => cmd_dot(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

fn cmd_models() -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| model | structure | layers | GFLOPs | params (M) | cut candidates |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for m in Model::ALL {
        let g = m.graph();
        let line = m.line().map_err(|e| err(e.to_string()))?;
        let _ = writeln!(
            out,
            "| {m} | {} | {} | {:.2} | {:.2} | {} |",
            if m.is_general() { "general" } else { "line" },
            g.len(),
            g.total_flops() as f64 / 1e9,
            g.total_params() as f64 / 1e6,
            line.k() + 1,
        );
    }
    Ok(out)
}

fn cmd_profile(flags: &Flags) -> Result<String, CliError> {
    let (model, s) = scenario(flags)?;
    let p = s.profile();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{model} at {} Mbps — cut cost table (f = mobile ms, g = upload ms)",
        s.network().bandwidth_mbps
    );
    let _ = writeln!(out, "| cut | f (ms) | g (ms) | cloud (ms) | f>=g |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for l in 0..=p.k() {
        let _ = writeln!(
            out,
            "| {l} | {:.1} | {:.1} | {:.2} | {} |",
            p.f(l),
            p.g(l),
            p.cloud(l),
            if p.f(l) >= p.g(l) { "*" } else { "" }
        );
    }
    Ok(out)
}

fn cmd_plan(flags: &Flags) -> Result<String, CliError> {
    let (model, s) = scenario(flags)?;
    let n = flags.parse_usize("jobs")?;
    let strategy = flags.strategy_or(Strategy::Jps)?;
    let emit_trace = flags.get("emit-trace");
    let emit_metrics = flags.get("emit-metrics");
    let observing = emit_trace.is_some() || emit_metrics.is_some();
    if observing {
        // Start the registry from a clean slate so the exported data
        // describes exactly this invocation.
        mcdnn_obs::set_enabled(true);
        mcdnn_obs::reset();
    }
    let started = std::time::Instant::now();
    let plan = s
        .try_plan(strategy, n)
        .map_err(|e| err(format!("planning failed: {e}")))?;
    let decision_time = started.elapsed();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{model}, {n} jobs at {} Mbps, strategy {}",
        s.network().bandwidth_mbps,
        strategy.label()
    );
    let _ = writeln!(
        out,
        "makespan: {:.1} ms ({:.1} ms/job), decided in {:?}",
        plan.makespan_ms,
        plan.average_makespan_ms(),
        decision_time
    );
    let _ = writeln!(out, "cuts:  {:?}", plan.cuts);
    let _ = writeln!(out, "order: {:?}", plan.order);
    let _ = writeln!(out, "\n{}", plan.gantt(s.profile()).to_ascii(64));
    if let Some(path) = flags.get("svg") {
        let svg = plan.gantt(s.profile()).to_svg(720, 18);
        std::fs::write(path, svg).map_err(|e| err(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "wrote SVG Gantt to {path}");
    }
    if let Some(path) = flags.get("trace") {
        let trace = mcdnn_sim::to_chrome_trace(&plan.jobs(s.profile()), &plan.order);
        std::fs::write(path, trace).map_err(|e| err(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "wrote Chrome trace to {path} (open in Perfetto)");
    }
    if observing {
        // Replay the plan on the deterministic executor so the
        // per-stage busy/wait histograms describe this schedule.
        let jobs = plan.jobs(s.profile());
        mcdnn_sim::run_pipeline(&jobs, &plan.order, &mcdnn_sim::ExecutorConfig::default());
        if let Some(path) = emit_trace {
            let mut trace = mcdnn_sim::schedule_trace(&jobs, &plan.order, 1);
            trace.add_spans(2, &mcdnn_obs::drain_spans());
            std::fs::write(path, trace.to_json())
                .map_err(|e| err(format!("writing {path}: {e}")))?;
            let _ = writeln!(
                out,
                "wrote unified Chrome trace to {path} (pid 1: schedule, pid 2: recorded spans; \
                 open in Perfetto)"
            );
        }
        if let Some(path) = emit_metrics {
            std::fs::write(path, mcdnn_obs::snapshot().to_json())
                .map_err(|e| err(format!("writing {path}: {e}")))?;
            let _ = writeln!(out, "wrote metrics snapshot to {path}");
        }
    }
    Ok(out)
}

fn cmd_pareto(flags: &Flags) -> Result<String, CliError> {
    let (model, s) = scenario(flags)?;
    let n = flags.parse_usize("jobs")?;
    let energy = mcdnn_profile::EnergyModel::raspberry_pi4_wifi();
    let front = mcdnn_partition::pareto_front(s.profile(), n, &energy);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{model}, {n} jobs at {} Mbps — latency/energy Pareto front",
        s.network().bandwidth_mbps
    );
    let _ = writeln!(out, "| makespan (ms) | energy (J) | distinct cuts |");
    let _ = writeln!(out, "|---|---|---|");
    for p in front {
        let mut cuts = p.plan.cuts.clone();
        cuts.sort_unstable();
        cuts.dedup();
        let _ = writeln!(
            out,
            "| {:.1} | {:.2} | {:?} |",
            p.makespan_ms,
            p.energy_mj / 1e3,
            cuts
        );
    }
    Ok(out)
}

fn cmd_load(flags: &Flags) -> Result<String, CliError> {
    let path = flags.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| err(format!("reading {path}: {e}")))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("model");
    let graph = mcdnn_graph::parse_model(name, &text).map_err(|e| err(e.to_string()))?;
    let line = if graph.is_line_structure() {
        mcdnn_graph::LineDnn::from_graph(&graph).map_err(|e| err(e.to_string()))?
    } else {
        mcdnn_graph::collapse_to_line(&graph).map_err(|e| err(e.to_string()))?
    };
    let (clustered, _) = mcdnn_graph::cluster_virtual_blocks(&line);
    let bandwidth = flags.parse_f64("bandwidth")?;
    let setup = flags.parse_f64_or("setup-ms", 10.0)?;
    let n = flags.parse_usize("jobs")?;
    let s = Scenario::new(
        clustered,
        DeviceModel::raspberry_pi4(),
        NetworkModel::new(bandwidth, setup),
        CloudModel::Device(DeviceModel::cloud_gtx1080()),
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "loaded {name}: {} layers, {:.2} GFLOPs, {} cut candidates",
        graph.len(),
        graph.total_flops() as f64 / 1e9,
        s.profile().k() + 1
    );
    let _ = writeln!(out, "| strategy | makespan (ms) | per-job (ms) |");
    let _ = writeln!(out, "|---|---|---|");
    for strat in [Strategy::LocalOnly, Strategy::CloudOnly, Strategy::JpsBestMix] {
        let plan = s.plan(strat, n);
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.1} |",
            strat.label(),
            plan.makespan_ms,
            plan.average_makespan_ms()
        );
    }
    Ok(out)
}

fn cmd_compare(flags: &Flags) -> Result<String, CliError> {
    let (model, s) = scenario(flags)?;
    let n = flags.parse_usize("jobs")?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{model}, {n} jobs at {} Mbps",
        s.network().bandwidth_mbps
    );
    let _ = writeln!(out, "| strategy | makespan (ms) | per-job (ms) |");
    let _ = writeln!(out, "|---|---|---|");
    // Every strategy except BF, whose cost explodes at compare-scale n.
    for strat in Strategy::all()
        .into_iter()
        .filter(|&s| s != Strategy::BruteForce)
    {
        let plan = s.plan(strat, n);
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.1} |",
            strat.label(),
            plan.makespan_ms,
            plan.average_makespan_ms()
        );
    }
    Ok(out)
}

fn cmd_sweep(flags: &Flags) -> Result<String, CliError> {
    let model = flags.model()?;
    let from = flags.parse_f64("from")?;
    let to = flags.parse_f64("to")?;
    let steps = flags.parse_usize("steps")?;
    let n = flags.parse_usize("jobs")?;
    if from <= 0.0 || to < from || steps < 2 {
        return Err(err("need 0 < --from <= --to and --steps >= 2"));
    }
    let mbps: Vec<f64> = (0..steps)
        .map(|i| from + (to - from) * i as f64 / (steps - 1) as f64)
        .collect();
    let rows = mcdnn::experiment::bandwidth_sweep(model, &mbps, n);
    let mut out = String::new();
    let _ = writeln!(out, "{model}, {n} jobs — per-job latency (ms)");
    let _ = writeln!(out, "| Mbps | LO | CO | PO | JPS |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {:.2} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.bandwidth_mbps, r.lo_ms, r.co_ms, r.po_ms, r.jps_ms
        );
    }
    Ok(out)
}

fn cmd_inspect(flags: &Flags) -> Result<String, CliError> {
    let model = flags.model()?;
    let g = model.graph();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{model}: {} layers, {:.2} GFLOPs, {:.2} M params, {}",
        g.len(),
        g.total_flops() as f64 / 1e9,
        g.total_params() as f64 / 1e6,
        if g.is_line_structure() {
            "line structure"
        } else {
            "general structure"
        }
    );
    let _ = writeln!(out, "| # | name | op | output | MFLOPs | params |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for (id, node) in g.iter() {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.2} | {} |",
            id.index(),
            node.name,
            node.layer.name(),
            node.output,
            node.flops as f64 / 1e6,
            node.params
        );
    }
    let line = model.line().map_err(|e| err(e.to_string()))?;
    let _ = writeln!(
        out,
        "\nclustered line view: {} cut candidates; offload volumes (bytes): {:?}",
        line.k() + 1,
        (0..=line.k()).map(|c| line.offload_bytes(c)).collect::<Vec<_>>()
    );
    let breakdown = mcdnn_graph::cost_breakdown(&g);
    let _ = writeln!(
        out,
        "cost classes: dense {:.1}% / depthwise {:.1}% / memory-bound {:.1}% of FLOPs \
         (high depthwise share means a pure-FLOP device model under-prices this net)",
        breakdown.dense_flops as f64 / breakdown.total_flops().max(1) as f64 * 100.0,
        breakdown.depthwise_fraction() * 100.0,
        breakdown.memory_flops as f64 / breakdown.total_flops().max(1) as f64 * 100.0,
    );
    Ok(out)
}

fn cmd_stream(flags: &Flags) -> Result<String, CliError> {
    let (model, s) = scenario(flags)?;
    let fps = flags.parse_f64("fps")?;
    if fps <= 0.0 {
        return Err(err("--fps must be positive"));
    }
    let p = s.profile();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{model} at {} Mbps, target {fps} fps (period {:.1} ms)",
        s.network().bandwidth_mbps,
        1000.0 / fps
    );
    match mcdnn_sim::best_cut_for_rate(p, fps, 0.9) {
        None => {
            let best_rate = (0..=p.k())
                .map(|c| mcdnn_sim::saturation_rate_hz(p.f(c), p.g(c)))
                .fold(0.0f64, f64::max);
            let _ = writeln!(
                out,
                "no cut sustains {fps} fps on this platform; ceiling is {best_rate:.1} fps"
            );
        }
        Some(cut) => {
            let stats = mcdnn_sim::simulate_stream(
                p.f(cut),
                p.g(cut),
                &mcdnn_sim::StreamConfig {
                    period_ms: 1000.0 / fps,
                    arrival_jitter: 0.2,
                    frames: 1500,
                    warmup: 150,
                    seed: 1,
                },
            );
            let _ = writeln!(
                out,
                "best cut: {cut} (f = {:.1} ms, g = {:.1} ms); \
                 steady-state sojourn mean {:.1} ms / p95 {:.1} ms; \
                 utilisation CPU {:.0}% uplink {:.0}%",
                p.f(cut),
                p.g(cut),
                stats.mean_sojourn_ms,
                stats.p95_sojourn_ms,
                stats.rho_cpu * 100.0,
                stats.rho_link * 100.0,
            );
        }
    }
    Ok(out)
}

fn cmd_hetero(flags: &Flags) -> Result<String, CliError> {
    let models_raw = flags.require("models")?;
    let counts_raw = flags.require("counts")?;
    let bandwidth = flags.parse_f64("bandwidth")?;
    let setup = flags.parse_f64_or("setup-ms", 10.0)?;
    let models: Vec<Model> = models_raw
        .split(',')
        .map(|m| m.trim().parse().map_err(|e: String| err(e)))
        .collect::<Result<_, _>>()?;
    let counts: Vec<usize> = counts_raw
        .split(',')
        .map(|c| {
            c.trim()
                .parse()
                .map_err(|_| err(format!("bad count '{c}'")))
        })
        .collect::<Result<_, _>>()?;
    if models.len() != counts.len() || models.is_empty() {
        return Err(err("--models and --counts must list the same (non-zero) number of entries"));
    }
    let net = NetworkModel::new(bandwidth, setup);
    let groups: Vec<mcdnn_partition::JobGroup> = models
        .iter()
        .zip(&counts)
        .map(|(&m, &count)| mcdnn_partition::JobGroup {
            profile: Scenario::paper_default(m, net).profile().clone(),
            count,
        })
        .collect();
    let joint = mcdnn_partition::hetero_jps_plan(&groups);
    let separate: f64 = groups
        .iter()
        .map(|g| Strategy::JpsBestMix.plan(&g.profile, g.count).makespan_ms)
        .sum();
    let mut out = String::new();
    let _ = writeln!(out, "heterogeneous batch at {bandwidth} Mbps:");
    for ((m, c), cut) in models.iter().zip(&counts).zip(&joint.cuts) {
        let _ = writeln!(out, "  {c} × {m}: cut {} (mix: {:?})", cut.cut, cut.mix);
    }
    let _ = writeln!(
        out,
        "joint makespan {:.1} ms vs per-model planning {:.1} ms (-{:.1}%)",
        joint.makespan_ms,
        separate,
        (1.0 - joint.makespan_ms / separate) * 100.0
    );
    Ok(out)
}

fn cmd_chaos(flags: &Flags) -> Result<String, CliError> {
    let (model, s) = scenario(flags)?;
    let config = ChaosConfig {
        jobs_per_burst: flags.parse_usize_or("jobs", 6)?,
        bursts: flags.parse_usize_or("bursts", 9)?,
        target_hz: flags.parse_f64_or("fps", 20.0)?,
        rho_limit: flags.parse_f64_or("rho", 0.9)?,
        seed: flags.parse_u64_or("seed", 7)?,
        ..ChaosConfig::default()
    };
    if config.bursts < 3 {
        return Err(err("--bursts must be at least 3"));
    }
    if config.target_hz <= 0.0 {
        return Err(err("--fps must be positive"));
    }
    if !(0.0..=1.0).contains(&config.rho_limit) || config.rho_limit == 0.0 {
        return Err(err("--rho must be in (0, 1]"));
    }
    let emit_trace = flags.get("emit-trace");
    let emit_metrics = flags.get("emit-metrics");
    if emit_metrics.is_some() {
        mcdnn_obs::set_enabled(true);
        mcdnn_obs::reset();
    }
    let report = chaos_report(&s, &config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{model} at {} Mbps, {} jobs/burst, target {} fps\n",
        s.network().bandwidth_mbps,
        config.jobs_per_burst,
        config.target_hz
    );
    out.push_str(&report.render());
    if let Some(path) = emit_trace {
        let trace = mcdnn_sim::faulted_trace(&report.drill.result, &report.drill.plan, 1);
        std::fs::write(path, trace.to_json()).map_err(|e| err(format!("writing {path}: {e}")))?;
        let _ = writeln!(
            out,
            "wrote drill Chrome trace to {path} (stage rows, fault windows, event flags; \
             open in Perfetto)"
        );
    }
    if let Some(path) = emit_metrics {
        std::fs::write(path, mcdnn_obs::snapshot().to_json())
            .map_err(|e| err(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "wrote metrics snapshot to {path}");
    }
    Ok(out)
}

/// Rate profiles for every zoo model the JPS theory admits on the
/// reference platform — the pool both serve modes draw tenants from.
/// With `cloud_contended` the suffix is costed on the reference cloud
/// GPU instead of an infinitely fast one, so a finite server pool has
/// real work to stretch; without it the profiles (and therefore every
/// pre-contention output) are byte-identical to earlier releases.
fn zoo_rate_profiles(setup: f64, cloud_contended: bool) -> Vec<mcdnn_partition::RateProfile> {
    let cloud = if cloud_contended {
        CloudModel::Device(DeviceModel::cloud_gtx1080())
    } else {
        CloudModel::Negligible
    };
    Model::ALL
        .iter()
        .filter_map(|&m| m.line().ok())
        .map(|line| {
            mcdnn_partition::RateProfile::evaluate(
                &line,
                &DeviceModel::raspberry_pi4(),
                &cloud,
                setup,
            )
        })
        .filter(|p| p.check_monotone().is_ok())
        .collect()
}

/// Map the CLI's single `--drift <w>` knob onto a [`mcdnn_sim::DriftSpec`]:
/// device walk at `w`, link walk at `w/2`, measurement jitter at `w/4`.
fn drift_spec(flags: &Flags) -> Result<mcdnn_sim::DriftSpec, CliError> {
    let w = flags.parse_f64_or("drift", 0.0)?;
    if !(w.is_finite() && (0.0..1.0).contains(&w)) {
        return Err(err("--drift expects a walk half-width in [0, 1)"));
    }
    Ok(mcdnn_sim::DriftSpec {
        device_walk: w,
        link_walk: w / 2.0,
        jitter: w / 4.0,
        ..mcdnn_sim::DriftSpec::none()
    })
}

fn cmd_serve(flags: &Flags) -> Result<String, CliError> {
    if flags.has("slo") {
        return cmd_serve_slo(flags);
    }
    let users = flags.parse_usize_or("users", 12)?;
    let setup = flags.parse_f64_or("setup-ms", 10.0)?;
    let config = mcdnn_sim::ServeConfig {
        bursts_per_user: flags.parse_usize_or("bursts", 40)?,
        lo_mbps: flags.parse_f64_or("from", 1.0)?,
        hi_mbps: flags.parse_f64_or("to", 100.0)?,
        fault_every: flags.parse_usize_or("fault-every", 16)?,
        seed: flags.parse_u64_or("seed", 0x5EED)?,
        drift: drift_spec(flags)?,
        adapt: flags.has("adapt").then(AdaptConfig::default),
        ..mcdnn_sim::ServeConfig::default()
    };
    if users == 0 || config.bursts_per_user == 0 {
        return Err(err("--users and --bursts must be positive"));
    }
    if !(config.lo_mbps > 0.0 && config.lo_mbps <= config.hi_mbps) {
        return Err(err("need 0 < --from <= --to"));
    }
    let emit_metrics = flags.get("emit-metrics");
    if emit_metrics.is_some() {
        mcdnn_obs::set_enabled(true);
        mcdnn_obs::reset();
    }
    // The fleet draws users round-robin from every zoo model whose rate
    // profile the JPS theory admits on the reference platform.
    let profiles = zoo_rate_profiles(setup, false);
    let specs = mcdnn_sim::fleet(&profiles, users, &config);
    let cache = std::sync::Arc::new(mcdnn_partition::PlanCache::new());
    let pool =
        mcdnn_runtime::WorkerPool::new(mcdnn_runtime::worker_threads().min(users));
    let report = mcdnn_sim::serve_fleet(&pool, &cache, &specs, &config)
        .map_err(|e| err(format!("serving failed: {e}")))?;

    // Deterministic in --seed: no wall times, no thread counts — the
    // same fleet prints byte-identically at any MCDNN_THREADS.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet: {users} users x {} bursts over {} zoo models, {:.0}-{:.0} Mbps walks",
        config.bursts_per_user,
        profiles.len(),
        config.lo_mbps,
        config.hi_mbps
    );
    if config.drift.is_active() || config.adapt.is_some() {
        let _ = writeln!(
            out,
            "drift: device walk {:.3}, link walk {:.3}, jitter {:.3}; adaptation {}",
            config.drift.device_walk,
            config.drift.link_walk,
            config.drift.jitter,
            if config.adapt.is_some() { "on" } else { "off" },
        );
    }
    let _ = writeln!(
        out,
        "| user | model | strategy | jobs/burst | bursts | jobs | faulted | degraded | hits | replans | gen | mean ms | digest |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|---|");
    for u in &report.users {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.1} | {:016x} |",
            u.id,
            u.model,
            u.strategy.label(),
            u.n_jobs,
            u.bursts,
            u.jobs,
            u.faulted_bursts,
            u.degraded_bursts,
            u.hits,
            u.replans,
            u.profile_version.generation,
            u.mean_makespan_ms,
            u.digest,
        );
    }
    let _ = writeln!(
        out,
        "\ntotals: {} bursts, {} jobs, {} faulted, {} degraded, {} hits, {} replans; \
         plan cache {} entries / {} shards; fleet digest={:016x}",
        report.total_bursts,
        report.total_jobs,
        report.total_faulted_bursts,
        report.total_degraded_bursts,
        report.total_hits,
        report.total_replans,
        cache.len(),
        cache.shards(),
        report.fleet_digest,
    );
    if let Some(path) = emit_metrics {
        std::fs::write(path, mcdnn_obs::snapshot().to_json())
            .map_err(|e| err(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "wrote metrics snapshot to {path}");
    }
    Ok(out)
}

fn cmd_serve_slo(flags: &Flags) -> Result<String, CliError> {
    let tenants_n = flags.parse_usize_or("users", 8)?;
    let setup = flags.parse_f64_or("setup-ms", 10.0)?;
    let cloud_servers = flags.parse_usize_or("cloud-servers", 0)?;
    let config = mcdnn_sim::SloConfig {
        requests_per_tenant: flags.parse_usize_or("bursts", 40)?,
        lo_mbps: flags.parse_f64_or("from", 1.0)?,
        hi_mbps: flags.parse_f64_or("to", 100.0)?,
        overload: flags.parse_f64_or("overload", 2.0)?,
        max_queue: flags.parse_usize_or("queue", 64)?,
        seed: flags.parse_u64_or("seed", 0x510_5EED)?,
        cloud_servers,
        drift: drift_spec(flags)?,
        adapt: flags.has("adapt").then(AdaptConfig::default),
        ..mcdnn_sim::SloConfig::default()
    };
    if tenants_n == 0 {
        return Err(err("--users must be positive"));
    }
    config.validate().map_err(|e| err(e.to_string()))?;
    let emit_metrics = flags.get("emit-metrics");
    if emit_metrics.is_some() {
        mcdnn_obs::set_enabled(true);
        mcdnn_obs::reset();
    }
    // A finite pool needs real suffix compute to contend over, so the
    // zoo is costed on the reference cloud GPU; with no pool the
    // pre-contention Negligible-cloud profiles keep output byte-stable.
    let profiles = zoo_rate_profiles(setup, cloud_servers > 0);
    let tenants = mcdnn_sim::slo_fleet(&profiles, tenants_n, &config);
    // Explicit thread count still honours MCDNN_THREADS: worker_threads
    // is the env/hardware resolution the builder would do itself, only
    // capped at the fleet size. Output is byte-identical either way.
    let engine = EngineConfig::new()
        .threads(mcdnn_runtime::worker_threads().min(tenants_n).max(1))
        .build();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "slo fleet: {tenants_n} tenants x {} requests over {} zoo models, \
         {:.0}-{:.0} Mbps walks, {:.1}x offered uplink load",
        config.requests_per_tenant,
        profiles.len(),
        config.lo_mbps,
        config.hi_mbps,
        config.overload,
    );
    if cloud_servers > 0 {
        let _ = writeln!(
            out,
            "cloud pool: {cloud_servers} shared server(s) under deterministic \
             processor-sharing"
        );
    }
    if config.drift.is_active() || config.adapt.is_some() {
        let _ = writeln!(
            out,
            "drift: device walk {:.3}, link walk {:.3}, jitter {:.3}; adaptation {}",
            config.drift.device_walk,
            config.drift.link_walk,
            config.drift.jitter,
            if config.adapt.is_some() { "on" } else { "off" },
        );
    }
    // FIFO and contention-oblivious EDF always run; a configured pool
    // adds the joint cut/share allocator as a third column.
    let mut runs = vec![
        (mcdnn_sim::SloPolicy::Fifo, config.clone()),
        (mcdnn_sim::SloPolicy::EdfDegrade, config.clone()),
    ];
    if cloud_servers > 0 {
        runs.push((
            mcdnn_sim::SloPolicy::EdfDegrade,
            mcdnn_sim::SloConfig {
                joint_alloc: true,
                ..config.clone()
            },
        ));
    }
    let mut reports = Vec::new();
    for (policy, cfg) in &runs {
        let r = engine
            .serve_slo(&tenants, cfg, *policy)
            .map_err(|e| err(format!("slo serving failed: {e}")))?;
        let label = if r.joint_alloc {
            format!("{policy}+joint")
        } else {
            policy.to_string()
        };
        let _ = writeln!(
            out,
            "\npolicy {label}: hit rate {:.1}% ({}/{}), admitted {}, \
             shed {} (queue {} / infeasible {}), degraded {}",
            r.hit_rate * 100.0,
            r.deadline_hits,
            r.total_requests,
            r.admitted,
            r.shed_queue_full + r.shed_infeasible,
            r.shed_queue_full,
            r.shed_infeasible,
            r.degraded,
        );
        if r.cloud_servers > 0 {
            let _ = writeln!(
                out,
                "cloud: {:.1} ms stretched stage time, {} joint cut overrides",
                r.cloud_busy_ms, r.joint_overrides,
            );
        }
        let _ = writeln!(
            out,
            "latency p50/p95/p99: {:.1}/{:.1}/{:.1} ms; digest={:016x}",
            r.p50_latency_ms, r.p95_latency_ms, r.p99_latency_ms, r.digest,
        );
        let _ = writeln!(
            out,
            "| tenant | model | weight | share | requests | admitted | shed | degraded | hits | hit % | mean ms | digest |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|");
        for t in &r.tenants {
            let _ = writeln!(
                out,
                "| {} | {} | {:.0} | {:.3} | {} | {} | {} | {} | {} | {:.1} | {:.1} | {:016x} |",
                t.id,
                t.model,
                t.weight,
                t.cloud_share,
                t.requests,
                t.admitted,
                t.shed,
                t.degraded,
                t.hits,
                t.hit_rate * 100.0,
                t.mean_latency_ms,
                t.digest,
            );
        }
        let _ = writeln!(out, "| class | requests | hits | hit % |");
        let _ = writeln!(out, "|---|---|---|---|");
        for c in &r.classes {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.1} |",
                c.name,
                c.requests,
                c.hits,
                c.hit_rate * 100.0,
            );
        }
        reports.push(r);
    }
    let (fifo, edf) = (&reports[0], &reports[1]);
    let _ = writeln!(
        out,
        "\nedf-degrade vs fifo: deadline hit rate {:.1}% vs {:.1}% ({:+.1} pts)",
        edf.hit_rate * 100.0,
        fifo.hit_rate * 100.0,
        (edf.hit_rate - fifo.hit_rate) * 100.0,
    );
    if let Some(joint) = reports.get(2) {
        let _ = writeln!(
            out,
            "joint vs oblivious (edf-degrade, {cloud_servers} server(s)): \
             deadline hit rate {:.1}% vs {:.1}% ({:+.1} pts)",
            joint.hit_rate * 100.0,
            edf.hit_rate * 100.0,
            (joint.hit_rate - edf.hit_rate) * 100.0,
        );
    }
    if let Some(path) = emit_metrics {
        std::fs::write(path, mcdnn_obs::snapshot().to_json())
            .map_err(|e| err(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "wrote metrics snapshot to {path}");
    }
    Ok(out)
}

fn cmd_dot(flags: &Flags) -> Result<String, CliError> {
    let model = flags.model()?;
    Ok(mcdnn_graph::dot::to_dot(&model.graph()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    #[test]
    fn models_lists_zoo() {
        let out = run_str(&["models"]).unwrap();
        assert!(out.contains("alexnet"));
        assert!(out.contains("googlenet"));
        assert!(out.contains("resnet50"));
    }

    #[test]
    fn profile_table() {
        let out = run_str(&["profile", "--model", "alexnet", "--bandwidth", "18.88"]).unwrap();
        assert!(out.contains("| cut |"));
        assert!(out.contains("| 0 |"));
    }

    #[test]
    fn plan_outputs_gantt() {
        let out = run_str(&[
            "plan", "--model", "alexnet", "--bandwidth", "18.88", "--jobs", "4",
        ])
        .unwrap();
        assert!(out.contains("makespan"));
        assert!(out.contains("comp"));
        assert!(out.contains("comm"));
    }

    #[test]
    fn plan_with_strategy_aliases() {
        for s in ["lo", "co", "po", "jps", "jps*", "best-mix"] {
            let out = run_str(&[
                "plan", "--model", "nin", "--bandwidth", "10", "--jobs", "2",
                "--strategy", s,
            ])
            .unwrap();
            assert!(out.contains("makespan"), "strategy {s}");
        }
    }

    #[test]
    fn compare_lists_all_strategies() {
        let out = run_str(&[
            "compare", "--model", "mobilenet_v2", "--bandwidth", "5.85", "--jobs", "10",
        ])
        .unwrap();
        for label in ["LO", "CO", "PO", "JPS", "JPS*"] {
            assert!(out.contains(label), "missing {label}");
        }
    }

    #[test]
    fn sweep_has_requested_steps() {
        let out = run_str(&[
            "sweep", "--model", "alexnet", "--from", "2", "--to", "20", "--steps", "4",
            "--jobs", "5",
        ])
        .unwrap();
        assert_eq!(out.lines().filter(|l| l.starts_with("| 2")).count(), 2); // 2.00 and 20.00
        assert_eq!(out.lines().count(), 3 + 4);
    }

    #[test]
    fn dot_output() {
        let out = run_str(&["dot", "--model", "nin"]).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn helpful_errors() {
        assert!(run_str(&[]).is_err());
        assert!(run_str(&["nope"]).unwrap_err().0.contains("unknown command"));
        assert!(run_str(&["plan", "--model", "alexnet"])
            .unwrap_err()
            .0
            .contains("--bandwidth"));
        assert!(run_str(&["plan", "--model", "bogus", "--bandwidth", "1", "--jobs", "1"])
            .unwrap_err()
            .0
            .contains("unknown model"));
        assert!(run_str(&[
            "plan", "--model", "nin", "--bandwidth", "x", "--jobs", "1"
        ])
        .unwrap_err()
        .0
        .contains("expects a number"));
        assert!(run_str(&["plan", "--model"]).unwrap_err().0.contains("missing its value"));
        assert!(run_str(&["plan", "oops"]).unwrap_err().0.contains("unexpected argument"));
    }

    #[test]
    fn pareto_command() {
        let out = run_str(&[
            "pareto", "--model", "alexnet", "--bandwidth", "18.88", "--jobs", "10",
        ])
        .unwrap();
        assert!(out.contains("Pareto front"));
        assert!(out.contains("| makespan"));
    }

    #[test]
    fn load_command_roundtrip() {
        let dir = std::env::temp_dir().join("mcdnn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("tiny.dnn");
        std::fs::write(
            &file,
            "i: input(3, 32, 32)\nc: conv(8, k=3, p=1)\nr: relu\np: maxpool(k=2, s=2)\nd: dense(10)\n",
        )
        .unwrap();
        let out = run_str(&[
            "load",
            "--file",
            file.to_str().unwrap(),
            "--bandwidth",
            "10",
            "--jobs",
            "4",
        ])
        .unwrap();
        assert!(out.contains("loaded tiny"));
        assert!(out.contains("JPS*"));
        let missing = run_str(&["load", "--file", "/nonexistent.dnn", "--bandwidth", "1", "--jobs", "1"]);
        assert!(missing.is_err());
    }

    #[test]
    fn plan_trace_export() {
        let dir = std::env::temp_dir().join("mcdnn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("plan.trace.json");
        let out = run_str(&[
            "plan", "--model", "alexnet", "--bandwidth", "18.88", "--jobs", "3",
            "--trace", trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("Perfetto"));
        let content = std::fs::read_to_string(&trace).unwrap();
        assert!(content.starts_with('[') && content.trim_end().ends_with(']'));
        assert!(content.contains("mobile CPU"));
    }

    // Every --emit-metrics run resets the process-global registry, so
    // tests that snapshot metrics must not overlap.
    static METRICS_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn plan_emit_trace_and_metrics() {
        let _gate = METRICS_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("mcdnn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("unified.trace.json");
        let metrics = dir.join("metrics.json");
        let out = run_str(&[
            "plan", "--model", "alexnet", "--bandwidth", "18.88", "--jobs", "10",
            "--emit-trace", trace.to_str().unwrap(),
            "--emit-metrics", metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("unified Chrome trace"));
        assert!(out.contains("metrics snapshot"));

        let doc = std::fs::read_to_string(&trace).unwrap();
        let parsed = mcdnn_obs::json::parse(&doc).expect("trace is valid JSON");
        let events = parsed.as_array().expect("array document");
        // Schedule rows under pid 1, recorded spans under pid 2.
        let pids: Vec<f64> = events
            .iter()
            .map(|e| e.get("pid").unwrap().as_f64().unwrap())
            .collect();
        assert!(pids.contains(&1.0), "schedule rows present");
        assert!(pids.contains(&2.0), "span rows present");
        assert!(doc.contains("mobile CPU"));
        assert!(doc.contains("jps_plan"));
        // X-event timestamps are monotone per the writer contract.
        let ts: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));

        let snap = std::fs::read_to_string(&metrics).unwrap();
        let parsed = mcdnn_obs::json::parse(&snap).expect("metrics are valid JSON");
        let counters = parsed.get("counters").expect("counters object");
        assert!(
            counters.get("planner.jps.candidates").and_then(|v| v.as_f64()).unwrap_or(0.0)
                >= 1.0,
            "planner candidate counts exported: {snap}"
        );
        let hists = parsed.get("histograms").expect("histograms object");
        for h in ["exec.mobile.busy_ms", "exec.uplink.busy_ms", "exec.mobile.wait_ms"] {
            assert!(
                hists.get(h).and_then(|v| v.get("count")).and_then(|c| c.as_f64())
                    .unwrap_or(0.0)
                    >= 1.0,
                "{h} populated: {snap}"
            );
        }
    }

    #[test]
    fn plan_reports_infeasible_brute_force_as_error() {
        let res = run_str(&[
            "plan", "--model", "alexnet", "--bandwidth", "18.88", "--jobs", "100000",
            "--strategy", "bf",
        ]);
        let msg = res.unwrap_err().0;
        assert!(msg.contains("planning failed"), "{msg}");
        assert!(msg.contains("multisets"), "{msg}");
    }

    #[test]
    fn plan_svg_export() {
        let dir = std::env::temp_dir().join("mcdnn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let svg = dir.join("gantt.svg");
        let out = run_str(&[
            "plan", "--model", "alexnet", "--bandwidth", "18.88", "--jobs", "3",
            "--svg", svg.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote SVG"));
        let content = std::fs::read_to_string(&svg).unwrap();
        assert!(content.starts_with("<svg"));
    }

    #[test]
    fn inspect_command() {
        let out = run_str(&["inspect", "--model", "nin"]).unwrap();
        assert!(out.contains("line structure"));
        assert!(out.contains("| # | name | op |"));
        assert!(out.contains("clustered line view"));
    }

    #[test]
    fn stream_command_both_outcomes() {
        // Low rate: a cut exists.
        let ok = run_str(&[
            "stream", "--model", "mobilenet_v2", "--bandwidth", "18.88", "--fps", "2",
        ])
        .unwrap();
        assert!(ok.contains("best cut"), "{ok}");
        // Absurd rate: ceiling reported.
        let no = run_str(&[
            "stream", "--model", "mobilenet_v2", "--bandwidth", "18.88", "--fps", "500",
        ])
        .unwrap();
        assert!(no.contains("ceiling"), "{no}");
    }

    #[test]
    fn hetero_command() {
        let out = run_str(&[
            "hetero", "--models", "alexnet,mobilenet_v2", "--counts", "3,3",
            "--bandwidth", "10",
        ])
        .unwrap();
        assert!(out.contains("joint makespan"));
        assert!(out.contains("3 × alexnet"));
        // Mismatched lists rejected.
        assert!(run_str(&[
            "hetero", "--models", "alexnet", "--counts", "1,2", "--bandwidth", "10"
        ])
        .is_err());
    }

    #[test]
    fn chaos_reports_grid_and_digest() {
        let out = run_str(&[
            "chaos", "--model", "alexnet", "--bandwidth", "18.88", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("chaos grid"), "{out}");
        for scenario in ["steady", "blackout_mid", "dead_link"] {
            assert!(out.contains(scenario), "missing scenario {scenario}");
        }
        for policy in ["frozen", "ladder", "lagged-ladder", "mobile-only"] {
            assert!(out.contains(policy), "missing policy {policy}");
        }
        assert!(out.contains("vs_oracle"));
        assert!(out.contains("digest="));
    }

    #[test]
    fn chaos_output_is_deterministic_per_seed() {
        let args = [
            "chaos", "--model", "mobilenet_v2", "--bandwidth", "10", "--jobs", "4",
            "--bursts", "6", "--seed", "1234",
        ];
        let a = run_str(&args).unwrap();
        let b = run_str(&args).unwrap();
        assert_eq!(a, b, "same seed must produce byte-identical output");
        let mut other = args;
        other[other.len() - 1] = "1235";
        assert_ne!(a, run_str(&other).unwrap(), "seed must matter");
    }

    #[test]
    fn chaos_emit_trace_writes_fault_rows() {
        let dir = std::env::temp_dir().join("mcdnn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("chaos.trace.json");
        let out = run_str(&[
            "chaos", "--model", "alexnet", "--bandwidth", "18.88", "--seed", "7",
            "--emit-trace", trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("drill Chrome trace"));
        let doc = std::fs::read_to_string(&trace).unwrap();
        let parsed = mcdnn_obs::json::parse(&doc).expect("trace is valid JSON");
        assert!(!parsed.as_array().unwrap().is_empty());
        assert!(doc.contains("\"name\":\"faults\""), "fault row named");
    }

    #[test]
    fn chaos_emit_metrics_exports_frontier_and_arena_counters() {
        let _gate = METRICS_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("mcdnn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("chaos.metrics.json");
        let out = run_str(&[
            "chaos", "--model", "alexnet", "--bandwidth", "18.88", "--seed", "7",
            "--emit-metrics", metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("metrics snapshot"));
        let snap = std::fs::read_to_string(&metrics).unwrap();
        let parsed = mcdnn_obs::json::parse(&snap).expect("metrics are valid JSON");
        let counters = parsed.get("counters").expect("counters object");
        // The chaos grid shares one compiled ladder frontier across all
        // scenario × policy replays; the drill's faulted DES runs in an
        // arena. Both must surface in the exported snapshot.
        for key in ["frontier.ladder.compile", "frontier.ladder.lookups", "des.arena.runs"] {
            assert!(
                counters.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0) >= 1.0,
                "counter {key} missing from snapshot: {snap}"
            );
        }
        assert!(
            counters
                .get("frontier.ladder.compile")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::MAX)
                <= counters
                    .get("frontier.ladder.lookups")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0),
            "one shared compile serves many lookups: {snap}"
        );
    }

    #[test]
    fn chaos_rejects_bad_flags() {
        assert!(run_str(&[
            "chaos", "--model", "alexnet", "--bandwidth", "10", "--bursts", "2"
        ])
        .unwrap_err()
        .0
        .contains("--bursts"));
        assert!(run_str(&[
            "chaos", "--model", "alexnet", "--bandwidth", "10", "--fps", "-1"
        ])
        .unwrap_err()
        .0
        .contains("--fps"));
        assert!(run_str(&[
            "chaos", "--model", "alexnet", "--bandwidth", "10", "--rho", "1.5"
        ])
        .unwrap_err()
        .0
        .contains("--rho"));
    }

    #[test]
    fn serve_reports_fleet_and_digest() {
        let out = run_str(&["serve", "--users", "6", "--bursts", "10"]).unwrap();
        assert!(out.contains("fleet: 6 users x 10 bursts"), "{out}");
        assert!(out.contains("| user | model | strategy |"), "{out}");
        assert!(out.contains("totals: 60 bursts"), "{out}");
        assert!(out.contains("fleet digest="), "{out}");
        // No wall times: byte-identical on re-run, sensitive to seed.
        let again = run_str(&["serve", "--users", "6", "--bursts", "10"]).unwrap();
        assert_eq!(out, again, "serve output must be deterministic");
        let other = run_str(&["serve", "--users", "6", "--bursts", "10", "--seed", "9"]).unwrap();
        assert_ne!(out, other, "seed must matter");
    }

    #[test]
    fn serve_adapt_reports_replans_under_drift() {
        let args = [
            "serve", "--users", "4", "--bursts", "40", "--drift", "0.08", "--adapt",
        ];
        let out = run_str(&args).unwrap();
        assert!(
            out.contains("drift: device walk 0.080, link walk 0.040, jitter 0.020; adaptation on"),
            "{out}"
        );
        assert!(out.contains("| hits | replans | gen |"), "{out}");
        assert!(!out.contains(" 0 replans"), "drift must trigger replans: {out}");
        assert_eq!(out, run_str(&args).unwrap(), "adaptive serve must be deterministic");
        // Zero drift: adaptation never commits, so the fleet digest
        // matches the plain run byte for byte.
        let frozen = run_str(&["serve", "--users", "4", "--bursts", "40"]).unwrap();
        let idle = run_str(&["serve", "--users", "4", "--bursts", "40", "--adapt"]).unwrap();
        let digest_of = |s: &str| {
            s.lines()
                .find(|l| l.contains("fleet digest="))
                .map(str::to_owned)
                .expect("digest line")
        };
        assert_eq!(digest_of(&frozen), digest_of(&idle), "zero-drift adapt must be a no-op");
        assert!(idle.contains("0 replans"), "{idle}");
    }

    #[test]
    fn serve_slo_accepts_adapt_and_rejects_bad_drift() {
        let args = [
            "serve", "--slo", "--users", "4", "--bursts", "16", "--drift", "0.08", "--adapt",
        ];
        let out = run_str(&args).unwrap();
        assert!(out.contains("adaptation on"), "{out}");
        assert_eq!(out, run_str(&args).unwrap(), "adaptive serve --slo must be deterministic");
        assert!(run_str(&["serve", "--drift", "1.5"])
            .unwrap_err()
            .0
            .contains("--drift"));
        assert!(run_str(&["serve", "--slo", "--drift", "-0.1"])
            .unwrap_err()
            .0
            .contains("--drift"));
    }

    #[test]
    fn serve_emit_metrics_exports_serving_counters() {
        let _gate = METRICS_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("mcdnn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("serve.metrics.json");
        let out = run_str(&[
            "serve", "--users", "5", "--bursts", "12", "--fault-every", "4",
            "--emit-metrics", metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("metrics snapshot"));
        let snap = std::fs::read_to_string(&metrics).unwrap();
        let parsed = mcdnn_obs::json::parse(&snap).expect("metrics are valid JSON");
        let counters = parsed.get("counters").expect("counters object");
        let get = |key: &str| counters.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        // Serving volume, cache sharding, and pool execution all leave
        // their marks in one snapshot.
        assert_eq!(get("serve.users"), 5.0, "{snap}");
        assert_eq!(get("serve.bursts"), 60.0, "{snap}");
        assert!(get("serve.jobs") >= 60.0, "{snap}");
        assert!(get("serve.faulted_bursts") >= 1.0, "{snap}");
        assert!(get("frontier.shard.misses") >= 1.0, "{snap}");
        assert!(get("runtime.pool.tasks") >= 5.0, "{snap}");
    }

    #[test]
    fn serve_slo_compares_policies_deterministically() {
        let args = ["serve", "--slo", "--users", "4", "--bursts", "16"];
        let out = run_str(&args).unwrap();
        assert!(out.contains("slo fleet: 4 tenants x 16 requests"), "{out}");
        assert!(out.contains("policy fifo:"), "{out}");
        assert!(out.contains("policy edf-degrade:"), "{out}");
        assert!(out.contains("| tenant | model | weight |"), "{out}");
        assert!(out.contains("| interactive |"), "{out}");
        assert!(out.contains("edf-degrade vs fifo: deadline hit rate"), "{out}");
        // Virtual time only — byte-identical on re-run, sensitive to seed.
        assert_eq!(out, run_str(&args).unwrap(), "serve --slo must be deterministic");
        let other = run_str(&["serve", "--slo", "--users", "4", "--bursts", "16", "--seed", "9"])
            .unwrap();
        assert_ne!(out, other, "seed must matter");
        // The boolean flag parses anywhere in the flag list.
        let tail = run_str(&["serve", "--users", "4", "--bursts", "16", "--slo"]).unwrap();
        assert_eq!(out, tail, "--slo position must not matter");
    }

    #[test]
    fn serve_slo_emit_metrics_exports_sched_counters() {
        let _gate = METRICS_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("mcdnn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("slo.metrics.json");
        let out = run_str(&[
            "serve", "--slo", "--users", "4", "--bursts", "20", "--overload", "3",
            "--emit-metrics", metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("metrics snapshot"));
        let snap = std::fs::read_to_string(&metrics).unwrap();
        let parsed = mcdnn_obs::json::parse(&snap).expect("metrics are valid JSON");
        let counters = parsed.get("counters").expect("counters object");
        let get = |key: &str| counters.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        assert_eq!(get("sched.requests"), 2.0 * 4.0 * 20.0, "{snap}");
        assert!(get("sched.admitted") >= 1.0, "{snap}");
        assert!(get("sched.deadline_hits") >= 1.0, "{snap}");
        // Dispatch-path telemetry from the indexed scheduler: the loop
        // timer and heap traffic must be live, and the pricing memo must
        // have been consulted (hits + misses covers cold caches). Stale
        // pops and prunes can legitimately be zero on a small fleet, but
        // the keys must still be exported.
        assert!(get("sched.dispatch_ns") >= 1.0, "{snap}");
        assert!(get("sched.heap.pushes") >= 1.0, "{snap}");
        assert!(get("sched.heap.pops") >= 1.0, "{snap}");
        assert!(
            get("sched.price_memo.hits") + get("sched.price_memo.misses") >= 1.0,
            "{snap}"
        );
        for key in ["sched.heap.stale", "sched.price_memo.prunes"] {
            assert!(counters.get(key).is_some(), "{key} exported: {snap}");
        }
        let hists = parsed.get("histograms").expect("histograms object");
        for h in ["sched.queue_depth", "sched.slack_ms", "sched.latency_ms"] {
            assert!(
                hists.get(h).and_then(|v| v.get("count")).and_then(|c| c.as_f64())
                    .unwrap_or(0.0)
                    >= 1.0,
                "{h} populated: {snap}"
            );
        }
    }

    #[test]
    fn serve_slo_cloud_servers_adds_joint_run() {
        let args = [
            "serve", "--slo", "--users", "6", "--bursts", "12", "--cloud-servers", "2",
        ];
        let out = run_str(&args).unwrap();
        assert!(out.contains("cloud pool: 2 shared server(s)"), "{out}");
        assert!(out.contains("policy fifo:"), "{out}");
        assert!(out.contains("policy edf-degrade:"), "{out}");
        assert!(out.contains("policy edf-degrade+joint:"), "{out}");
        assert!(out.contains("joint vs oblivious"), "{out}");
        assert!(out.contains("stretched stage time"), "{out}");
        assert!(out.contains("| share |"), "{out}");
        // Virtual time only — byte-identical on re-run.
        assert_eq!(out, run_str(&args).unwrap(), "cloud runs must be deterministic");
        // Without a pool there is no joint column and no cloud line.
        let plain = run_str(&["serve", "--slo", "--users", "6", "--bursts", "12"]).unwrap();
        assert!(!plain.contains("+joint"), "{plain}");
        assert!(!plain.contains("cloud pool"), "{plain}");
    }

    #[test]
    fn serve_slo_cloud_metrics_export_cloud_counters() {
        let _gate = METRICS_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("mcdnn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("slo.cloud.metrics.json");
        let out = run_str(&[
            "serve", "--slo", "--users", "6", "--bursts", "12", "--cloud-servers", "1",
            "--emit-metrics", metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("metrics snapshot"));
        let snap = std::fs::read_to_string(&metrics).unwrap();
        let parsed = mcdnn_obs::json::parse(&snap).expect("metrics are valid JSON");
        let counters = parsed.get("counters").expect("counters object");
        let get = |key: &str| counters.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        // Three runs now: fifo + oblivious edf + joint edf.
        assert_eq!(get("sched.requests"), 3.0 * 6.0 * 12.0, "{snap}");
        assert!(get("sched.cloud.requests") >= 1.0, "{snap}");
        assert!(get("joint.allocations") >= 1.0, "{snap}");
        let hists = parsed.get("histograms").expect("histograms object");
        for h in ["sched.cloud.share", "sched.cloud.stage_ms"] {
            assert!(
                hists.get(h).and_then(|v| v.get("count")).and_then(|c| c.as_f64())
                    .unwrap_or(0.0)
                    >= 1.0,
                "{h} populated: {snap}"
            );
        }
    }

    #[test]
    fn serve_slo_rejects_bad_flags() {
        assert!(run_str(&["serve", "--slo", "--overload", "-1"])
            .unwrap_err()
            .0
            .contains("overload"));
        assert!(run_str(&["serve", "--slo", "--queue", "0"])
            .unwrap_err()
            .0
            .contains("max_queue"));
        assert!(run_str(&["serve", "--slo", "--users", "0"])
            .unwrap_err()
            .0
            .contains("--users"));
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(run_str(&["serve", "--users", "0"])
            .unwrap_err()
            .0
            .contains("--users"));
        assert!(run_str(&["serve", "--from", "5", "--to", "2"])
            .unwrap_err()
            .0
            .contains("--from"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn brute_force_strategy_small() {
        let out = run_str(&[
            "plan", "--model", "alexnet", "--bandwidth", "18.88", "--jobs", "2",
            "--strategy", "bf",
        ])
        .unwrap();
        assert!(out.contains("BF") || out.contains("makespan"));
    }
}
