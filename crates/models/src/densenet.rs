//! DenseNet-121 (Huang et al.) — dense connectivity: every layer in a
//! dense block consumes the channel-concatenation of *all* previous
//! layers' outputs. A deliberate stress test for the graph machinery:
//! each dense layer's input concat is an articulation point, but the
//! accumulated feature maps keep growing inside a block, so the
//! virtual-block clustering has to discard almost every interior cut —
//! the admissible cuts concentrate at the transition layers, exactly
//! where a human would put them.

use mcdnn_graph::{
    cluster_virtual_blocks, collapse_to_line, Activation, DnnGraph, GraphBuilder, GraphError,
    LayerKind as L, LineDnn, NodeId, PoolKind, TensorShape,
};

/// Growth rate `k` of DenseNet-121.
const GROWTH: usize = 32;

/// One composite layer: BN → ReLU → 1×1 bottleneck (4k) → BN → ReLU →
/// 3×3 conv (k); its output is concatenated onto the running features.
fn dense_layer(b: &mut GraphBuilder, features: NodeId) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    let new = b.chain(
        features,
        [
            L::BatchNorm,
            relu(),
            L::Conv2d {
                out_channels: 4 * GROWTH,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
            relu(),
            L::Conv2d {
                out_channels: GROWTH,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                bias: false,
            },
        ],
    );
    b.merge(&[features, new], L::Concat)
}

/// Transition layer: BN → 1×1 conv halving channels → 2×2 avg pool.
fn transition(b: &mut GraphBuilder, input: NodeId, out_ch: usize) -> NodeId {
    b.chain(
        input,
        [
            L::BatchNorm,
            L::Act(Activation::ReLU),
            L::Conv2d {
                out_channels: out_ch,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
                bias: false,
            },
            L::Pool2d {
                kind: PoolKind::Avg,
                kernel: 2,
                stride: 2,
                padding: 0,
            },
        ],
    )
}

/// Build the DenseNet-121 DAG (blocks of 6/12/24/16 dense layers).
pub fn graph() -> DnnGraph {
    let mut b = DnnGraph::builder("densenet121");
    let relu = || L::Act(Activation::ReLU);
    let i = b.input(TensorShape::chw(3, 224, 224));
    let mut prev = b.chain(
        i,
        [
            L::Conv2d {
                out_channels: 64,
                kernel: 7,
                stride: 2,
                padding: 3,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
            relu(),
            L::Pool2d {
                kind: PoolKind::Max,
                kernel: 3,
                stride: 2,
                padding: 1,
            },
        ],
    );
    let mut channels = 64usize;
    let blocks = [6usize, 12, 24, 16];
    for (bi, &layers) in blocks.iter().enumerate() {
        for _ in 0..layers {
            prev = dense_layer(&mut b, prev);
            channels += GROWTH;
        }
        if bi + 1 < blocks.len() {
            channels /= 2;
            prev = transition(&mut b, prev, channels);
        }
    }
    b.chain(
        prev,
        [
            L::BatchNorm,
            relu(),
            L::GlobalAvgPool,
            L::Flatten,
            L::dense(1000),
        ],
    );
    b.build().expect("densenet121 definition is valid")
}

/// DenseNet-121 as a line DNN (articulation collapse + clustering).
pub fn line() -> Result<LineDnn, GraphError> {
    let collapsed = collapse_to_line(&graph())?;
    let (clustered, _) = cluster_virtual_blocks(&collapsed);
    Ok(clustered.with_name("densenet121"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_general_structure() {
        assert!(!graph().is_line_structure());
    }

    #[test]
    fn parameter_count_matches_torchvision() {
        // torchvision densenet121: 7,978,856 parameters.
        assert_eq!(graph().total_params(), 7_978_856);
    }

    #[test]
    fn flops_magnitude() {
        // ~2.9 GMACs = ~5.7 GFLOPs.
        let gflops = graph().total_flops() as f64 / 1e9;
        assert!(
            (5.0..6.5).contains(&gflops),
            "DenseNet121 FLOPs {gflops} GF out of band"
        );
    }

    #[test]
    fn dense_block_channel_growth() {
        let g = graph();
        // After block 1: 64 + 6·32 = 256 channels at 56×56; transition
        // halves to 128 at 28×28. Final features: 1024 at 7×7.
        for (c, s) in [(256, 56), (128, 28), (512, 28), (1024, 7)] {
            assert!(
                g.nodes().iter().any(|n| n.output == TensorShape::chw(c, s, s)),
                "missing [{c}, {s}, {s}]"
            );
        }
    }

    #[test]
    fn clustering_concentrates_cuts_at_transitions() {
        // Inside a dense block the accumulated concat only grows, so
        // interior cuts are dominated; survivors sit at/after the
        // down-sampling transitions. 58 dense/transition junctions
        // collapse to a handful of candidates.
        let l = line().unwrap();
        assert!(
            l.k() <= 10,
            "expected few surviving cuts, got {}",
            l.k()
        );
        assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&l));
        assert_eq!(l.total_flops(), graph().total_flops());
    }
}
