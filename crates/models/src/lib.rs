//! # mcdnn-models
//!
//! Model zoo: layer-exact DAG definitions of the DNN architectures the
//! paper evaluates (AlexNet, MobileNet-v2, GoogLeNet, ResNet-18) plus
//! the line-structure networks it cites as motivation (VGG-16, NiN,
//! Tiny-YOLOv2) and an Inception-v4 module mirroring paper Fig. 3(a).
//!
//! Every model is built with [`mcdnn_graph`] shape inference, so tensor
//! shapes, parameter counts and FLOPs are derived — not hard-coded — and
//! validated against published reference values in tests.
//!
//! [`synthetic`] provides the paper's synthetic inputs: AlexNet′ (Fig. 11,
//! communication volumes resampled from a fitted exponential curve) and
//! parametric line DNN generators for property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alexnet;
pub mod densenet;
pub mod googlenet;
pub mod inception;
pub mod mobilenet;
pub mod nin;
pub mod resnet;
pub mod squeezenet;
pub mod synthetic;
pub mod vgg;
pub mod yolo;
pub mod zoo;

pub use zoo::Model;
