//! Inception-v4 building blocks (Szegedy et al. 2017), mirroring the
//! paper's Fig. 3(a): the Inception-C module with asymmetric 1×3 / 3×1
//! convolution splits. Used as a compact general-structure test subject
//! for Alg. 3 — its DAG matches the figure's shape exactly.

use mcdnn_graph::{
    Activation, DnnGraph, GraphBuilder, LayerKind as L, NodeId, PoolKind, TensorShape,
};

/// Asymmetric 1×3 / 3×1 conv, modelled with a square 3×3 kernel.
///
/// The layer model uses square kernels; the true op has kernel area 3
/// rather than 9, so this over-counts its MACs ~3×. Orientation and the
/// exact constant are irrelevant to partitioning behaviour — this module
/// exists as a DAG-*shape* test subject matching paper Fig. 3(a) — and
/// shapes (which drive offload volumes) are exact.
fn conv_1x3_like(out_channels: usize) -> L {
    L::conv(out_channels, 3, 1, 1)
}

/// Append an Inception-C style module (paper Fig. 3(a)); returns the
/// final `Filter Concat` node.
pub fn inception_c(b: &mut GraphBuilder, input: NodeId) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    // Branch 1: avg pool -> 1x1 conv.
    let b1 = b.chain(
        input,
        [
            L::Pool2d {
                kind: PoolKind::Avg,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            L::conv(256, 1, 1, 0),
            relu(),
        ],
    );
    // Branch 2: 1x1 conv.
    let b2 = b.chain(input, [L::conv(256, 1, 1, 0), relu()]);
    // Branch 3: 1x1 -> split into 1x3 and 3x1 -> inner concat.
    let s3 = b.chain(input, [L::conv(384, 1, 1, 0), relu()]);
    let b3a = b.chain(s3, [conv_1x3_like(255), relu()]);
    let b3b = b.chain(s3, [conv_1x3_like(255), relu()]);
    let b3 = b.merge(&[b3a, b3b], L::Concat);
    // Branch 4: 1x1 -> 1x3 -> 3x1 -> split into 1x3 / 3x1 -> concat.
    let s4 = b.chain(
        input,
        [
            L::conv(384, 1, 1, 0),
            relu(),
            conv_1x3_like(448),
            relu(),
            conv_1x3_like(512),
            relu(),
        ],
    );
    let b4a = b.chain(s4, [conv_1x3_like(255), relu()]);
    let b4b = b.chain(s4, [conv_1x3_like(255), relu()]);
    let b4 = b.merge(&[b4a, b4b], L::Concat);
    b.merge(&[b1, b2, b3, b4], L::Concat)
}

/// A small general-structure network: stem conv + one Inception-C module
/// + classifier. The DAG shape matches paper Fig. 3(a).
pub fn inception_c_network() -> DnnGraph {
    let mut b = DnnGraph::builder("inception_c_net");
    let relu = || L::Act(Activation::ReLU);
    let i = b.input(TensorShape::chw(3, 64, 64));
    let stem = b.chain(
        i,
        [
            L::Conv2d {
                out_channels: 1024,
                kernel: 3,
                stride: 8,
                padding: 1,
                groups: 1,
                bias: true,
            },
            relu(),
        ],
    );
    let module = inception_c(&mut b, stem);
    b.chain(module, [L::GlobalAvgPool, L::Flatten, L::dense(1000)]);
    b.build().expect("inception-c network is valid")
}

/// Append an Inception-A module (35×35 grid, 384 channels in/out).
fn inception_a(b: &mut GraphBuilder, input: NodeId) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    let b1 = b.chain(
        input,
        [
            L::Pool2d {
                kind: PoolKind::Avg,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            L::conv(96, 1, 1, 0),
            relu(),
        ],
    );
    let b2 = b.chain(input, [L::conv(96, 1, 1, 0), relu()]);
    let b3 = b.chain(
        input,
        [L::conv(64, 1, 1, 0), relu(), L::conv(96, 3, 1, 1), relu()],
    );
    let b4 = b.chain(
        input,
        [
            L::conv(64, 1, 1, 0),
            relu(),
            L::conv(96, 3, 1, 1),
            relu(),
            L::conv(96, 3, 1, 1),
            relu(),
        ],
    );
    b.merge(&[b1, b2, b3, b4], L::Concat)
}

/// Append a Reduction-A module (35×35 → 17×17).
fn reduction_a(b: &mut GraphBuilder, input: NodeId) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    let b1 = b.layer_after(
        input,
        L::Pool2d {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 2,
            padding: 0,
        },
    );
    let b2 = b.chain(input, [L::conv(384, 3, 2, 0), relu()]);
    let b3 = b.chain(
        input,
        [
            L::conv(192, 1, 1, 0),
            relu(),
            L::conv(224, 3, 1, 1),
            relu(),
            L::conv(256, 3, 2, 0),
            relu(),
        ],
    );
    b.merge(&[b1, b2, b3], L::Concat)
}

/// Append an Inception-B module (17×17 grid, 1024 channels in/out;
/// asymmetric 1×7 / 7×1 convs modelled as in [`inception_c`]).
fn inception_b(b: &mut GraphBuilder, input: NodeId) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    // 1×7-equivalent: same spatial size, 7-tap kernel area abstracted.
    let conv_1x7 = |out| L::conv(out, 3, 1, 1);
    let b1 = b.chain(
        input,
        [
            L::Pool2d {
                kind: PoolKind::Avg,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            L::conv(128, 1, 1, 0),
            relu(),
        ],
    );
    let b2 = b.chain(input, [L::conv(384, 1, 1, 0), relu()]);
    let b3 = b.chain(
        input,
        [
            L::conv(192, 1, 1, 0),
            relu(),
            conv_1x7(224),
            relu(),
            conv_1x7(256),
            relu(),
        ],
    );
    let b4 = b.chain(
        input,
        [
            L::conv(192, 1, 1, 0),
            relu(),
            conv_1x7(192),
            relu(),
            conv_1x7(224),
            relu(),
            conv_1x7(224),
            relu(),
            conv_1x7(256),
            relu(),
        ],
    );
    b.merge(&[b1, b2, b3, b4], L::Concat)
}

/// Append a Reduction-B module (17×17 → 8×8).
fn reduction_b(b: &mut GraphBuilder, input: NodeId) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    let b1 = b.layer_after(
        input,
        L::Pool2d {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 2,
            padding: 0,
        },
    );
    let b2 = b.chain(
        input,
        [L::conv(192, 1, 1, 0), relu(), L::conv(192, 3, 2, 0), relu()],
    );
    let b3 = b.chain(
        input,
        [
            L::conv(256, 1, 1, 0),
            relu(),
            L::conv(320, 3, 1, 1),
            relu(),
            L::conv(320, 3, 2, 0),
            relu(),
        ],
    );
    b.merge(&[b1, b2, b3], L::Concat)
}

/// Build the full Inception-v4 DAG: simplified stem (single-path),
/// 4 × Inception-A, Reduction-A, 7 × Inception-B, Reduction-B,
/// 3 × Inception-C, global pooling and the classifier — the paper's
/// Fig. 3(a) network at full depth.
///
/// The reference stem contains two small internal branches; we use the
/// single-path equivalent (same output shape `[384, 35, 35]`, matching
/// aggregate compute) so the stem stays a clean articulation chain —
/// branch handling is exercised by the 14 inception/reduction modules.
pub fn inception_v4() -> DnnGraph {
    let mut b = DnnGraph::builder("inception_v4");
    let relu = || L::Act(Activation::ReLU);
    let i = b.input(TensorShape::chw(3, 299, 299));
    let mut prev = b.chain(
        i,
        [
            L::conv(32, 3, 2, 0),
            relu(),
            L::conv(32, 3, 1, 0),
            relu(),
            L::conv(64, 3, 1, 1),
            relu(),
            L::maxpool(3, 2),
            L::conv(96, 1, 1, 0),
            relu(),
            L::conv(192, 3, 1, 0),
            relu(),
            L::maxpool(3, 2),
            L::conv(384, 1, 1, 0),
            relu(),
        ],
    );
    for _ in 0..4 {
        prev = inception_a(&mut b, prev);
    }
    prev = reduction_a(&mut b, prev);
    for _ in 0..7 {
        prev = inception_b(&mut b, prev);
    }
    prev = reduction_b(&mut b, prev);
    for _ in 0..3 {
        prev = inception_c(&mut b, prev);
    }
    b.chain(
        prev,
        [L::GlobalAvgPool, L::Flatten, L::Dropout, L::dense(1000)],
    );
    b.build().expect("inception_v4 definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdnn_graph::{decompose_into_paths, segments};

    #[test]
    fn module_is_general_structure() {
        assert!(!inception_c_network().is_line_structure());
    }

    #[test]
    fn concat_output_channels() {
        // 256 + 256 + (255+255) + (255+255) = 1532 channels.
        let g = inception_c_network();
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.output.channels() == 1532 && n.output.is_spatial()));
    }

    #[test]
    fn path_structure_matches_fig3a() {
        let g = inception_c_network();
        // Branches: 1 + 1 + 2 + 2 = 6 root-to-sink paths.
        let paths = decompose_into_paths(&g, 100).unwrap();
        assert_eq!(paths.len(), 6);
    }

    #[test]
    fn module_is_one_segment() {
        let g = inception_c_network();
        let segs = segments(&g).unwrap();
        let branching: Vec<_> = segs.iter().filter(|s| !s.is_line()).collect();
        assert_eq!(branching.len(), 1);
        assert_eq!(branching[0].paths.len(), 6);
    }

    #[test]
    fn inception_v4_builds_with_reference_grid() {
        let g = inception_v4();
        assert!(!g.is_line_structure());
        // Canonical grid checkpoints: 384×35×35, 1024×17×17, 1536×8×8.
        for (c, s) in [(384, 35), (1024, 17), (1536, 8)] {
            assert!(
                g.nodes().iter().any(|n| n.output == TensorShape::chw(c, s, s)),
                "missing grid [{c}, {s}, {s}]"
            );
        }
        let sink = g.sinks()[0];
        assert_eq!(g.node(sink).output, TensorShape::flat(1000));
    }

    #[test]
    fn inception_v4_module_count() {
        let g = inception_v4();
        let segs = segments(&g).unwrap();
        let branching = segs.iter().filter(|s| !s.is_line()).count();
        // 4×A + reduction-A + 7×B + reduction-B + 3×C = 16 modules.
        assert_eq!(branching, 16);
    }

    #[test]
    fn inception_v4_magnitudes() {
        let g = inception_v4();
        // Reference ≈ 24.6 GFLOPs / 42.7 M params; our 1×7→3×3
        // abstraction replaces 7-tap line kernels with 9-tap squares
        // (over- or under-counting per module), so bands are broad but
        // the order of magnitude must hold.
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((10.0..40.0).contains(&gflops), "v4 FLOPs {gflops} GF");
        let mparams = g.total_params() as f64 / 1e6;
        assert!((20.0..75.0).contains(&mparams), "v4 params {mparams} M");
    }

    #[test]
    fn inception_v4_plans_end_to_end() {
        use mcdnn_graph::{cluster_virtual_blocks, collapse_to_line};
        let g = inception_v4();
        let line = collapse_to_line(&g).unwrap();
        let (clustered, _) = cluster_virtual_blocks(&line);
        assert_eq!(clustered.total_flops(), g.total_flops());
        assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&clustered));
    }
}
