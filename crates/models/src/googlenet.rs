//! GoogLeNet (Szegedy et al.), the paper's general-structure workload
//! (§6.1, Figs. 12, 14, Table 1).
//!
//! Nine Inception modules, each with four parallel branches joined by a
//! `Filter Concat`. Unlike MobileNet bottlenecks, branch tensors *are*
//! smaller than module boundaries, so the paper keeps GoogLeNet as a
//! general DAG and partitions it with Alg. 3 (per-path cuts). The
//! articulation chain (stem layers + every concat) still provides the
//! line view used by single-cut baselines.

use mcdnn_graph::{
    cluster_virtual_blocks, collapse_to_line, Activation, DnnGraph, GraphError, GraphBuilder,
    LayerKind as L, LineDnn, NodeId, PoolKind, TensorShape,
};

/// Inception module channel plan:
/// `(#1x1, #3x3 reduce, #3x3, #5x5 reduce, #5x5, pool proj)`.
type InceptionPlan = (usize, usize, usize, usize, usize, usize);

/// The nine modules of GoogLeNet in order (3a..5b).
const MODULES: [InceptionPlan; 9] = [
    (64, 96, 128, 16, 32, 32),    // 3a -> 256
    (128, 128, 192, 32, 96, 64),  // 3b -> 480
    (192, 96, 208, 16, 48, 64),   // 4a -> 512
    (160, 112, 224, 24, 64, 64),  // 4b -> 512
    (128, 128, 256, 24, 64, 64),  // 4c -> 512
    (112, 144, 288, 32, 64, 64),  // 4d -> 528
    (256, 160, 320, 32, 128, 128), // 4e -> 832
    (256, 160, 320, 32, 128, 128), // 5a -> 832
    (384, 192, 384, 48, 128, 128), // 5b -> 1024
];

/// Append one Inception module; returns the concat node.
fn inception(b: &mut GraphBuilder, input: NodeId, plan: InceptionPlan) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    let (c1, r3, c3, r5, c5, pp) = plan;
    let b1 = b.chain(input, [L::conv(c1, 1, 1, 0), relu()]);
    let b2 = b.chain(
        input,
        [L::conv(r3, 1, 1, 0), relu(), L::conv(c3, 3, 1, 1), relu()],
    );
    let b3 = b.chain(
        input,
        [L::conv(r5, 1, 1, 0), relu(), L::conv(c5, 5, 1, 2), relu()],
    );
    let b4 = b.chain(
        input,
        [
            L::Pool2d {
                kind: PoolKind::Max,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            L::conv(pp, 1, 1, 0),
            relu(),
        ],
    );
    b.merge(&[b1, b2, b3, b4], L::Concat)
}

/// Build the GoogLeNet DAG (general structure).
pub fn graph() -> DnnGraph {
    let mut b = DnnGraph::builder("googlenet");
    let relu = || L::Act(Activation::ReLU);
    let i = b.input(TensorShape::chw(3, 224, 224));
    // Stem.
    let mut prev = b.chain(
        i,
        [
            L::Conv2d {
                out_channels: 64,
                kernel: 7,
                stride: 2,
                padding: 3,
                groups: 1,
                bias: true,
            },
            relu(),
            L::Pool2d {
                kind: PoolKind::Max,
                kernel: 3,
                stride: 2,
                padding: 1,
            },
            L::Lrn,
            L::conv(64, 1, 1, 0),
            relu(),
            L::conv(192, 3, 1, 1),
            relu(),
            L::Lrn,
            L::Pool2d {
                kind: PoolKind::Max,
                kernel: 3,
                stride: 2,
                padding: 1,
            },
        ],
    );
    for (idx, plan) in MODULES.iter().enumerate() {
        prev = inception(&mut b, prev, *plan);
        // Grid reductions after 3b (idx 1) and 4e (idx 6).
        if idx == 1 || idx == 6 {
            prev = b.layer_after(
                prev,
                L::Pool2d {
                    kind: PoolKind::Max,
                    kernel: 3,
                    stride: 2,
                    padding: 1,
                },
            );
        }
    }
    b.chain(
        prev,
        [L::GlobalAvgPool, L::Flatten, L::Dropout, L::dense(1000)],
    );
    b.build().expect("googlenet definition is valid")
}

/// GoogLeNet's line view: collapse onto the articulation chain (each
/// Inception module becomes one layer) and cluster. Used by the PO
/// baseline and as the coarse level of the general-structure partition.
pub fn line() -> Result<LineDnn, GraphError> {
    let collapsed = collapse_to_line(&graph())?;
    let (clustered, _) = cluster_virtual_blocks(&collapsed);
    Ok(clustered.with_name("googlenet"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdnn_graph::segments;

    #[test]
    fn is_general_structure() {
        assert!(!graph().is_line_structure());
    }

    #[test]
    fn parameter_count_matches_reference() {
        // GoogLeNet main branch (no aux classifiers): ≈ 6.6 M params.
        let m = graph().total_params() as f64 / 1e6;
        assert!((5.9..7.2).contains(&m), "GoogLeNet params {m} M out of band");
    }

    #[test]
    fn flops_magnitude() {
        // ~1.5 GMACs = ~3 GFLOPs.
        let gflops = graph().total_flops() as f64 / 1e9;
        assert!(
            (2.6..3.6).contains(&gflops),
            "GoogLeNet FLOPs {gflops} GF out of band"
        );
    }

    #[test]
    fn module_output_channels() {
        let g = graph();
        for (c, s) in [(256, 28), (480, 28), (512, 14), (832, 7), (1024, 7)] {
            assert!(
                g.nodes().iter().any(|n| n.output == TensorShape::chw(c, s, s)),
                "missing inception output [{c}, {s}, {s}]"
            );
        }
    }

    #[test]
    fn each_module_is_a_segment_with_four_paths() {
        let g = graph();
        let segs = segments(&g).unwrap();
        let branching: Vec<_> = segs.iter().filter(|s| !s.is_line()).collect();
        assert_eq!(branching.len(), 9, "expected 9 inception segments");
        for s in &branching {
            assert_eq!(s.paths.len(), 4, "inception modules have 4 branches");
        }
    }

    #[test]
    fn line_view_properties() {
        let l = line().unwrap();
        assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&l));
        assert_eq!(l.total_flops(), graph().total_flops());
        // GoogLeNet keeps only a handful of line cut candidates (the
        // grid-reduction pools and the classifier head): inception
        // outputs grow in channels faster than they shrink spatially, so
        // most module boundaries are dominated. This scarcity is exactly
        // why the paper treats GoogLeNet with the general-structure
        // algorithm rather than the line algorithm.
        assert!((3..=8).contains(&l.k()), "unexpected k = {}", l.k());
    }
}
