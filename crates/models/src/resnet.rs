//! ResNet-18 (He et al.), evaluated in the paper's Figs. 12, 14 and
//! Table 1. Residual bypass links make it a general-structure DAG; like
//! MobileNet-v2, its basic blocks cluster into virtual blocks (interior
//! tensors never shrink below the block boundary), so [`line()`] collapses
//! it onto the articulation chain.

use mcdnn_graph::{
    cluster_virtual_blocks, collapse_to_line, Activation, DnnGraph, GraphError, LayerKind as L,
    LineDnn, NodeId, PoolKind, TensorShape,
};

/// Append one BasicBlock (two 3×3 convs + identity/projection shortcut).
fn basic_block(
    b: &mut mcdnn_graph::GraphBuilder,
    input: NodeId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    let main = b.chain(
        input,
        [
            L::Conv2d {
                out_channels: out_ch,
                kernel: 3,
                stride,
                padding: 1,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
            relu(),
            L::Conv2d {
                out_channels: out_ch,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
        ],
    );
    let shortcut = if stride != 1 || in_ch != out_ch {
        b.chain(
            input,
            [
                L::Conv2d {
                    out_channels: out_ch,
                    kernel: 1,
                    stride,
                    padding: 0,
                    groups: 1,
                    bias: false,
                },
                L::BatchNorm,
            ],
        )
    } else {
        input
    };
    let sum = b.merge(&[main, shortcut], L::Add);
    b.layer_after(sum, relu())
}

/// Append one Bottleneck block (1×1 reduce → 3×3 → 1×1 expand ×4),
/// used by ResNet-50 and deeper.
fn bottleneck_block(
    b: &mut mcdnn_graph::GraphBuilder,
    input: NodeId,
    in_ch: usize,
    mid_ch: usize,
    stride: usize,
) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    let out_ch = mid_ch * 4;
    let main = b.chain(
        input,
        [
            L::Conv2d {
                out_channels: mid_ch,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
            relu(),
            L::Conv2d {
                out_channels: mid_ch,
                kernel: 3,
                stride,
                padding: 1,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
            relu(),
            L::Conv2d {
                out_channels: out_ch,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
        ],
    );
    let shortcut = if stride != 1 || in_ch != out_ch {
        b.chain(
            input,
            [
                L::Conv2d {
                    out_channels: out_ch,
                    kernel: 1,
                    stride,
                    padding: 0,
                    groups: 1,
                    bias: false,
                },
                L::BatchNorm,
            ],
        )
    } else {
        input
    };
    let sum = b.merge(&[main, shortcut], L::Add);
    b.layer_after(sum, relu())
}

/// Shared stem: 7×7/2 conv + BN + ReLU + 3×3/2 max pool.
fn stem(b: &mut mcdnn_graph::GraphBuilder) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    let i = b.input(TensorShape::chw(3, 224, 224));
    b.chain(
        i,
        [
            L::Conv2d {
                out_channels: 64,
                kernel: 7,
                stride: 2,
                padding: 3,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
            relu(),
            L::Pool2d {
                kind: PoolKind::Max,
                kernel: 3,
                stride: 2,
                padding: 1,
            },
        ],
    )
}

/// Generic basic-block ResNet (18/34) given per-stage repeat counts.
fn basic_resnet(name: &str, repeats: [usize; 4]) -> DnnGraph {
    let mut b = DnnGraph::builder(name);
    let mut prev = stem(&mut b);
    let mut in_ch = 64usize;
    for (stage, (out_ch, stride)) in [(64, 1), (128, 2), (256, 2), (512, 2)].into_iter().enumerate()
    {
        for rep in 0..repeats[stage] {
            let s = if rep == 0 { stride } else { 1 };
            prev = basic_block(&mut b, prev, in_ch, out_ch, s);
            in_ch = out_ch;
        }
    }
    b.chain(prev, [L::GlobalAvgPool, L::Flatten, L::dense(1000)]);
    b.build().expect("resnet definition is valid")
}

/// Build the ResNet-18 DAG.
pub fn graph() -> DnnGraph {
    basic_resnet("resnet18", [2, 2, 2, 2])
}

/// Build the ResNet-34 DAG.
pub fn graph34() -> DnnGraph {
    basic_resnet("resnet34", [3, 4, 6, 3])
}

/// Build the ResNet-50 DAG (bottleneck blocks).
pub fn graph50() -> DnnGraph {
    let mut b = DnnGraph::builder("resnet50");
    let mut prev = stem(&mut b);
    let mut in_ch = 64usize;
    for (stage, (mid_ch, stride)) in [(64, 1), (128, 2), (256, 2), (512, 2)].into_iter().enumerate()
    {
        let repeats = [3usize, 4, 6, 3][stage];
        for rep in 0..repeats {
            let s = if rep == 0 { stride } else { 1 };
            prev = bottleneck_block(&mut b, prev, in_ch, mid_ch, s);
            in_ch = mid_ch * 4;
        }
    }
    b.chain(prev, [L::GlobalAvgPool, L::Flatten, L::dense(1000)]);
    b.build().expect("resnet50 definition is valid")
}

/// ResNet-18 as a line DNN (articulation collapse + clustering).
pub fn line() -> Result<LineDnn, GraphError> {
    let collapsed = collapse_to_line(&graph())?;
    let (clustered, _) = cluster_virtual_blocks(&collapsed);
    Ok(clustered.with_name("resnet18"))
}

/// ResNet-34 as a line DNN.
pub fn line34() -> Result<LineDnn, GraphError> {
    let collapsed = collapse_to_line(&graph34())?;
    let (clustered, _) = cluster_virtual_blocks(&collapsed);
    Ok(clustered.with_name("resnet34"))
}

/// ResNet-50 as a line DNN.
pub fn line50() -> Result<LineDnn, GraphError> {
    let collapsed = collapse_to_line(&graph50())?;
    let (clustered, _) = cluster_virtual_blocks(&collapsed);
    Ok(clustered.with_name("resnet50"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_general_structure() {
        assert!(!graph().is_line_structure());
    }

    #[test]
    fn parameter_count_matches_torchvision() {
        // torchvision resnet18: 11,689,512 parameters.
        assert_eq!(graph().total_params(), 11_689_512);
    }

    #[test]
    fn flops_magnitude() {
        // ~1.8 GMACs = ~3.6 GFLOPs.
        let gflops = graph().total_flops() as f64 / 1e9;
        assert!(
            (3.4..4.0).contains(&gflops),
            "ResNet18 FLOPs {gflops} GF out of band"
        );
    }

    #[test]
    fn stage_shapes() {
        let g = graph();
        for (c, s) in [(64, 56), (128, 28), (256, 14), (512, 7)] {
            assert!(
                g.nodes().iter().any(|n| n.output == TensorShape::chw(c, s, s)),
                "missing stage output [{c}, {s}, {s}]"
            );
        }
    }

    #[test]
    fn line_view_properties() {
        let l = line().unwrap();
        assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&l));
        assert_eq!(l.total_flops(), graph().total_flops());
    }

    #[test]
    fn resnet34_parameter_count_matches_torchvision() {
        // torchvision resnet34: 21,797,672 parameters.
        assert_eq!(graph34().total_params(), 21_797_672);
    }

    #[test]
    fn resnet50_parameter_count_matches_torchvision() {
        // torchvision resnet50: 25,557,032 parameters.
        assert_eq!(graph50().total_params(), 25_557_032);
    }

    #[test]
    fn resnet50_flops_magnitude() {
        // ~4.1 GMACs = ~8.2 GFLOPs.
        let gflops = graph50().total_flops() as f64 / 1e9;
        assert!(
            (7.5..9.0).contains(&gflops),
            "ResNet50 FLOPs {gflops} GF out of band"
        );
    }

    #[test]
    fn deeper_resnets_line_views_hold() {
        for line in [line34().unwrap(), line50().unwrap()] {
            assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&line));
            assert!(line.k() >= 3);
        }
        assert_eq!(line34().unwrap().total_flops(), graph34().total_flops());
        assert_eq!(line50().unwrap().total_flops(), graph50().total_flops());
    }

    #[test]
    fn bottleneck_expands_channels_4x() {
        let g = graph50();
        // Stage outputs: 256, 512, 1024, 2048 channels.
        for (c, s) in [(256, 56), (512, 28), (1024, 14), (2048, 7)] {
            assert!(
                g.nodes().iter().any(|n| n.output == TensorShape::chw(c, s, s)),
                "missing bottleneck stage output [{c}, {s}, {s}]"
            );
        }
    }

    #[test]
    fn resnet_intermediate_volumes_are_large() {
        // The paper notes ResNet barely benefits at 3G because even its
        // deep intermediate tensors are big. Its smallest conv-stage
        // boundary (512×7×7×4 ≈ 100 KB) exceeds AlexNet's pool5 (36 KB).
        let l = line().unwrap();
        // Cut right before the classifier head: the last spatial tensor.
        let mut spatial_min = usize::MAX;
        for cut in 1..l.k() {
            let v = l.offload_bytes(cut);
            if v > 4096 {
                spatial_min = spatial_min.min(v);
            }
        }
        assert!(spatial_min >= 90_000, "got {spatial_min}");
    }
}
