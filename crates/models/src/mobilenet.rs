//! MobileNet-v2 (Sandler et al.), one of the paper's line-architecture
//! workloads (§6.1, Figs. 10, 12, 13, Table 1).
//!
//! Strictly, MobileNet-v2 is not a line: inverted residual blocks with
//! stride 1 and matching channels carry a bypass `Add` (paper Fig. 10).
//! The paper observes that tensor sizes *inside* a bottleneck module are
//! never smaller than at its boundary, so each module should be
//! clustered as a virtual block and the network then treated as a line
//! DAG. [`line()`] implements exactly that via the articulation-chain
//! collapse ([`mcdnn_graph::collapse_to_line`]) followed by virtual-block
//! clustering.

use mcdnn_graph::{
    cluster_virtual_blocks, collapse_to_line, Activation, DnnGraph, GraphError, LayerKind as L,
    LineDnn, NodeId, TensorShape,
};

/// Inverted-residual stage plan `(expansion t, out channels c, repeats n,
/// first stride s)` from Table 2 of the MobileNet-v2 paper.
const STAGES: [(usize, usize, usize, usize); 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Append one inverted residual block; returns the block output node.
fn inverted_residual(
    b: &mut mcdnn_graph::GraphBuilder,
    input: NodeId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expand: usize,
) -> NodeId {
    let relu6 = || L::Act(Activation::ReLU6);
    let hidden = in_ch * expand;
    let mut x = input;
    if expand != 1 {
        x = b.chain(x, [L::pointwise(hidden), L::BatchNorm, relu6()]);
    }
    x = b.chain(
        x,
        [
            L::depthwise(hidden, 3, stride, 1),
            L::BatchNorm,
            relu6(),
            L::pointwise(out_ch),
            L::BatchNorm,
        ],
    );
    if stride == 1 && in_ch == out_ch {
        b.merge(&[input, x], L::Add)
    } else {
        x
    }
}

/// Build the MobileNet-v2 DAG (general structure due to bypass links).
pub fn graph() -> DnnGraph {
    let mut b = DnnGraph::builder("mobilenet_v2");
    let relu6 = || L::Act(Activation::ReLU6);
    let i = b.input(TensorShape::chw(3, 224, 224));
    let mut prev = b.chain(
        i,
        [
            L::Conv2d {
                out_channels: 32,
                kernel: 3,
                stride: 2,
                padding: 1,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
            relu6(),
        ],
    );
    let mut in_ch = 32usize;
    for (t, c, n, s) in STAGES {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            prev = inverted_residual(&mut b, prev, in_ch, c, stride, t);
            in_ch = c;
        }
    }
    b.chain(
        prev,
        [
            L::pointwise(1280),
            L::BatchNorm,
            relu6(),
            L::GlobalAvgPool,
            L::Flatten,
            L::dense(1000),
        ],
    );
    b.build().expect("mobilenet_v2 definition is valid")
}

/// MobileNet-v2 as a line DNN: modules collapsed onto the articulation
/// chain, then virtual-block clustered so offload volume is strictly
/// decreasing (the form the paper's partition algorithm consumes).
pub fn line() -> Result<LineDnn, GraphError> {
    let collapsed = collapse_to_line(&graph())?;
    let (clustered, _) = cluster_virtual_blocks(&collapsed);
    Ok(clustered.with_name("mobilenet_v2"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_general_structure() {
        // Bypass links make the raw graph non-line.
        assert!(!graph().is_line_structure());
    }

    #[test]
    fn parameter_count_matches_torchvision() {
        // torchvision mobilenet_v2: 3,504,872 parameters.
        assert_eq!(graph().total_params(), 3_504_872);
    }

    #[test]
    fn flops_magnitude() {
        // ~0.30 GMACs = ~0.6 GFLOPs.
        let gflops = graph().total_flops() as f64 / 1e9;
        assert!(
            (0.55..0.75).contains(&gflops),
            "MobileNetV2 FLOPs {gflops} GF out of band"
        );
    }

    #[test]
    fn bottleneck_shapes_match_fig10() {
        // Paper Fig. 10: a 24-channel 56×56 module expands to 144 channels.
        let g = graph();
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.output == TensorShape::chw(24, 56, 56)));
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.output == TensorShape::chw(144, 56, 56)));
    }

    #[test]
    fn line_view_is_monotone_and_conserves_flops() {
        let l = line().unwrap();
        assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&l));
        assert_eq!(l.total_flops(), graph().total_flops());
        assert!(l.k() >= 4, "too few cut candidates: {}", l.k());
    }
}
