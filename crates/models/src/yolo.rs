//! Tiny YOLOv2 (Redmon & Farhadi), cited by the paper as a
//! line-structure detection network (§3.1). Darknet reference config:
//! six 3×3 conv + maxpool stages doubling channels 16→512, two 1024
//! channel 3×3 convs, and a 1×1 detection head (125 = 5 anchors ×
//! (5 + 20 VOC classes)).

use mcdnn_graph::{Activation, DnnGraph, GraphError, LayerKind as L, LineDnn, NodeId, TensorShape};

/// Build the Tiny-YOLOv2 DAG (line structure, 416×416 input).
pub fn graph() -> DnnGraph {
    let mut b = DnnGraph::builder("tiny_yolov2");
    let lrelu = || L::Act(Activation::ReLU); // leaky ReLU costed as ReLU
    let mut prev: NodeId = b.input(TensorShape::chw(3, 416, 416));
    for channels in [16usize, 32, 64, 128, 256] {
        prev = b.chain(
            prev,
            [
                L::Conv2d {
                    out_channels: channels,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    bias: false,
                },
                L::BatchNorm,
                lrelu(),
                L::maxpool(2, 2),
            ],
        );
    }
    // Sixth stage: darknet pools with stride 1 "same" here; a 3×3/1 pad 1
    // max pool keeps the 13×13 grid, matching the reference output size.
    prev = b.chain(
        prev,
        [
            L::Conv2d {
                out_channels: 512,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                bias: false,
            },
            L::BatchNorm,
            lrelu(),
            L::Pool2d {
                kind: mcdnn_graph::PoolKind::Max,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        ],
    );
    for _ in 0..2 {
        prev = b.chain(
            prev,
            [
                L::Conv2d {
                    out_channels: 1024,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    bias: false,
                },
                L::BatchNorm,
                lrelu(),
            ],
        );
    }
    b.layer_after(prev, L::conv(125, 1, 1, 0));
    b.build().expect("tiny yolo definition is valid")
}

/// Tiny-YOLOv2 as a line DNN.
pub fn line() -> Result<LineDnn, GraphError> {
    LineDnn::from_graph(&graph())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_line_structure() {
        assert!(graph().is_line_structure());
    }

    #[test]
    fn detection_grid_is_13x13() {
        let g = graph();
        let sink = g.sinks()[0];
        assert_eq!(g.node(sink).output, TensorShape::chw(125, 13, 13));
    }

    #[test]
    fn flops_magnitude() {
        // Tiny YOLOv2 ≈ 3.5 GMACs = ~7 GFLOPs at 416².
        let gflops = graph().total_flops() as f64 / 1e9;
        assert!(
            (6.0..9.0).contains(&gflops),
            "TinyYOLO FLOPs {gflops} GF out of band"
        );
    }
}
