//! SqueezeNet 1.1 (Iandola et al.) — a compact general-structure
//! network built from *fire modules*: a 1×1 squeeze conv feeding two
//! parallel expand convs (1×1 and 3×3) joined by channel concat. Eight
//! stacked two-branch segments make it a good mid-size test subject for
//! the general-structure planner (richer than one Inception-C module,
//! far smaller than GoogLeNet).

use mcdnn_graph::{
    cluster_virtual_blocks, collapse_to_line, Activation, DnnGraph, GraphBuilder, GraphError,
    LayerKind as L, LineDnn, NodeId, PoolKind, TensorShape,
};

/// Append one fire module; returns the concat node.
fn fire(b: &mut GraphBuilder, input: NodeId, squeeze: usize, expand: usize) -> NodeId {
    let relu = || L::Act(Activation::ReLU);
    let s = b.chain(input, [L::conv(squeeze, 1, 1, 0), relu()]);
    let e1 = b.chain(s, [L::conv(expand, 1, 1, 0), relu()]);
    let e3 = b.chain(s, [L::conv(expand, 3, 1, 1), relu()]);
    b.merge(&[e1, e3], L::Concat)
}

/// Build the SqueezeNet 1.1 DAG.
pub fn graph() -> DnnGraph {
    let mut b = DnnGraph::builder("squeezenet1_1");
    let relu = || L::Act(Activation::ReLU);
    let pool = || L::Pool2d {
        kind: PoolKind::Max,
        kernel: 3,
        stride: 2,
        padding: 0,
    };
    let i = b.input(TensorShape::chw(3, 224, 224));
    let mut prev = b.chain(i, [L::conv(64, 3, 2, 0), relu(), pool()]);
    prev = fire(&mut b, prev, 16, 64);
    prev = fire(&mut b, prev, 16, 64);
    prev = b.layer_after(prev, pool());
    prev = fire(&mut b, prev, 32, 128);
    prev = fire(&mut b, prev, 32, 128);
    prev = b.layer_after(prev, pool());
    prev = fire(&mut b, prev, 48, 192);
    prev = fire(&mut b, prev, 48, 192);
    prev = fire(&mut b, prev, 64, 256);
    prev = fire(&mut b, prev, 64, 256);
    b.chain(
        prev,
        [
            L::Dropout,
            L::conv(1000, 1, 1, 0),
            relu(),
            L::GlobalAvgPool,
            L::Flatten,
        ],
    );
    b.build().expect("squeezenet definition is valid")
}

/// SqueezeNet as a line DNN (articulation collapse + clustering).
pub fn line() -> Result<LineDnn, GraphError> {
    let collapsed = collapse_to_line(&graph())?;
    let (clustered, _) = cluster_virtual_blocks(&collapsed);
    Ok(clustered.with_name("squeezenet1_1"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdnn_graph::segments;

    #[test]
    fn is_general_structure() {
        assert!(!graph().is_line_structure());
    }

    #[test]
    fn parameter_count_matches_torchvision() {
        // torchvision squeezenet1_1: 1,235,496 parameters.
        assert_eq!(graph().total_params(), 1_235_496);
    }

    #[test]
    fn flops_magnitude() {
        // ~0.35 GMACs = ~0.7 GFLOPs.
        let gflops = graph().total_flops() as f64 / 1e9;
        assert!(
            (0.55..0.85).contains(&gflops),
            "SqueezeNet FLOPs {gflops} GF out of band"
        );
    }

    #[test]
    fn eight_fire_segments_with_two_branches() {
        let g = graph();
        let segs = segments(&g).unwrap();
        let branching: Vec<_> = segs.iter().filter(|s| !s.is_line()).collect();
        assert_eq!(branching.len(), 8, "eight fire modules");
        for s in &branching {
            assert_eq!(s.paths.len(), 2, "fire modules have two expand branches");
        }
    }

    #[test]
    fn line_view_properties() {
        let l = line().unwrap();
        assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&l));
        assert_eq!(l.total_flops(), graph().total_flops());
    }

    #[test]
    fn final_output_is_1000_way() {
        let g = graph();
        let sink = g.sinks()[0];
        assert_eq!(g.node(sink).output, TensorShape::flat(1000));
    }
}
