//! Model registry: one enum covering every architecture in the repo,
//! with uniform constructors for the DAG and line views.

use std::fmt;
use std::str::FromStr;

use mcdnn_graph::{cluster_virtual_blocks, DnnGraph, GraphError, LineDnn};

use crate::{
    alexnet, densenet, googlenet, inception, mobilenet, nin, resnet, squeezenet, synthetic, vgg,
    yolo,
};

/// Every model in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// AlexNet (line structure).
    AlexNet,
    /// AlexNet′ — synthetic AlexNet with exponential comm curve (Fig. 11).
    AlexNetPrime,
    /// VGG-16 (line structure).
    Vgg16,
    /// VGG-19 (line structure).
    Vgg19,
    /// Network-in-Network (line structure).
    Nin,
    /// Tiny YOLOv2 (line structure).
    TinyYoloV2,
    /// MobileNet-v2 (bypass links; clustered to a line per the paper).
    MobileNetV2,
    /// ResNet-18 (residual links; clustered to a line).
    ResNet18,
    /// ResNet-34 (residual links; clustered to a line).
    ResNet34,
    /// ResNet-50 (bottleneck blocks; clustered to a line).
    ResNet50,
    /// SqueezeNet 1.1 (fire modules; general structure).
    SqueezeNet,
    /// GoogLeNet (general structure, Alg. 3 territory).
    GoogLeNet,
    /// Single Inception-C module network (paper Fig. 3(a)).
    InceptionCNet,
    /// Full Inception-v4 (stem + 14 inception/reduction modules).
    InceptionV4,
    /// DenseNet-121 (dense connectivity; cuts concentrate at
    /// transition layers).
    DenseNet121,
}

impl Model {
    /// The four models of the paper's evaluation (Figs. 12–14, Table 1).
    pub const EVALUATED: [Model; 4] = [
        Model::AlexNet,
        Model::GoogLeNet,
        Model::MobileNetV2,
        Model::ResNet18,
    ];

    /// All models in the zoo.
    pub const ALL: [Model; 15] = [
        Model::AlexNet,
        Model::AlexNetPrime,
        Model::Vgg16,
        Model::Vgg19,
        Model::Nin,
        Model::TinyYoloV2,
        Model::MobileNetV2,
        Model::ResNet18,
        Model::ResNet34,
        Model::ResNet50,
        Model::SqueezeNet,
        Model::GoogLeNet,
        Model::InceptionCNet,
        Model::InceptionV4,
        Model::DenseNet121,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Model::AlexNet => "alexnet",
            Model::AlexNetPrime => "alexnet_prime",
            Model::Vgg16 => "vgg16",
            Model::Vgg19 => "vgg19",
            Model::Nin => "nin",
            Model::TinyYoloV2 => "tiny_yolov2",
            Model::MobileNetV2 => "mobilenet_v2",
            Model::ResNet18 => "resnet18",
            Model::ResNet34 => "resnet34",
            Model::ResNet50 => "resnet50",
            Model::SqueezeNet => "squeezenet1_1",
            Model::GoogLeNet => "googlenet",
            Model::InceptionCNet => "inception_c_net",
            Model::InceptionV4 => "inception_v4",
            Model::DenseNet121 => "densenet121",
        }
    }

    /// Build the full DAG. AlexNet′ has no DAG of its own (it is a
    /// resampled line view), so it returns the AlexNet DAG.
    pub fn graph(self) -> DnnGraph {
        match self {
            Model::AlexNet | Model::AlexNetPrime => alexnet::graph(),
            Model::Vgg16 => vgg::graph(),
            Model::Vgg19 => vgg::graph19(),
            Model::Nin => nin::graph(),
            Model::TinyYoloV2 => yolo::graph(),
            Model::MobileNetV2 => mobilenet::graph(),
            Model::ResNet18 => resnet::graph(),
            Model::ResNet34 => resnet::graph34(),
            Model::ResNet50 => resnet::graph50(),
            Model::SqueezeNet => squeezenet::graph(),
            Model::GoogLeNet => googlenet::graph(),
            Model::InceptionCNet => inception::inception_c_network(),
            Model::InceptionV4 => inception::inception_v4(),
            Model::DenseNet121 => densenet::graph(),
        }
    }

    /// The *clustered* line view every partition algorithm consumes:
    /// pure lines are clustered directly; residual/branching networks
    /// are collapsed onto their articulation chain first.
    pub fn line(self) -> Result<LineDnn, GraphError> {
        match self {
            Model::AlexNet => Ok(cluster_virtual_blocks(&alexnet::line()?).0.with_name("alexnet")),
            Model::AlexNetPrime => Ok(synthetic::alexnet_prime()),
            Model::Vgg16 => Ok(cluster_virtual_blocks(&vgg::line()?).0.with_name("vgg16")),
            Model::Vgg19 => Ok(cluster_virtual_blocks(&vgg::line19()?).0.with_name("vgg19")),
            Model::Nin => Ok(cluster_virtual_blocks(&nin::line()?).0.with_name("nin")),
            Model::TinyYoloV2 => {
                Ok(cluster_virtual_blocks(&yolo::line()?).0.with_name("tiny_yolov2"))
            }
            Model::MobileNetV2 => mobilenet::line(),
            Model::ResNet18 => resnet::line(),
            Model::ResNet34 => resnet::line34(),
            Model::ResNet50 => resnet::line50(),
            Model::SqueezeNet => squeezenet::line(),
            Model::GoogLeNet => googlenet::line(),
            Model::InceptionCNet => {
                let collapsed = mcdnn_graph::collapse_to_line(&inception::inception_c_network())?;
                Ok(cluster_virtual_blocks(&collapsed).0.with_name("inception_c_net"))
            }
            Model::InceptionV4 => {
                let collapsed = mcdnn_graph::collapse_to_line(&inception::inception_v4())?;
                Ok(cluster_virtual_blocks(&collapsed).0.with_name("inception_v4"))
            }
            Model::DenseNet121 => densenet::line(),
        }
    }

    /// The line view with a *realistic ARM-CPU* cost weighting instead
    /// of the pure FLOP model: depthwise convolutions billed 12× their
    /// FLOPs (measured ARM efficiency for depthwise is ~5–15% of the
    /// dense-conv FLOP rate) and memory-bound layers 2×.
    ///
    /// The pure model treats 1 FLOP = 1 FLOP regardless of layer kind;
    /// real ARM inference runs depthwise convs far below dense-conv
    /// throughput, which is why the paper's measured MobileNet LO time
    /// is proportionally much larger than its FLOPs suggest. This view
    /// reproduces that effect (see the `device_model_ablation` bench).
    pub fn line_realistic(self) -> Result<LineDnn, GraphError> {
        use mcdnn_graph::CostClass;
        let weight = |layer: &mcdnn_graph::LayerKind| match layer.cost_class() {
            CostClass::DenseCompute => 1.0,
            CostClass::Depthwise => 12.0,
            CostClass::MemoryBound => 2.0,
        };
        if self == Model::AlexNetPrime {
            return self.line(); // synthetic comm curve, FLOP-pure by design
        }
        let graph = self.graph();
        let base = if graph.is_line_structure() {
            LineDnn::from_graph_weighted(&graph, weight)?
        } else {
            mcdnn_graph::collapse_to_line_weighted(&graph, weight)?
        };
        Ok(cluster_virtual_blocks(&base).0.with_name(self.name()))
    }

    /// True when the underlying DAG branches (general structure).
    pub fn is_general(self) -> bool {
        matches!(
            self,
            Model::GoogLeNet
                | Model::InceptionCNet
                | Model::InceptionV4
                | Model::SqueezeNet
                | Model::DenseNet121
        )
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Model {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Model::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown model '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_builds() {
        for m in Model::ALL {
            let g = m.graph();
            assert!(!g.is_empty(), "{m} built empty");
            assert!(g.total_flops() > 0, "{m} has zero FLOPs");
        }
    }

    #[test]
    fn every_line_view_is_monotone() {
        for m in Model::ALL {
            let l = m.line().unwrap_or_else(|e| panic!("{m}: {e}"));
            assert!(
                mcdnn_graph::cluster::is_strictly_decreasing_volume(&l),
                "{m} line view volume not strictly decreasing"
            );
            assert!(l.k() >= 1);
        }
    }

    #[test]
    fn line_views_conserve_flops() {
        for m in Model::ALL {
            if m == Model::AlexNetPrime {
                continue; // synthetic comm curve, same compute as AlexNet
            }
            let g = m.graph();
            let l = m.line().unwrap();
            assert_eq!(l.total_flops(), g.total_flops(), "{m} FLOPs drift");
        }
    }

    #[test]
    fn realistic_lines_cost_more_than_pure_flops() {
        for m in [Model::MobileNetV2, Model::AlexNet, Model::ResNet18] {
            let pure = m.line().unwrap();
            let real = m.line_realistic().unwrap();
            assert!(
                real.total_flops() > pure.total_flops(),
                "{m}: weighting must increase effective cost"
            );
            assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&real));
        }
        // MobileNet (depthwise-heavy) inflates far more than AlexNet
        // (dense-conv heavy) — the effect the weighting exists to model.
        let infl = |m: Model| {
            m.line_realistic().unwrap().total_flops() as f64
                / m.line().unwrap().total_flops() as f64
        };
        assert!(
            infl(Model::MobileNetV2) > infl(Model::AlexNet) + 0.3,
            "mobilenet {} vs alexnet {}",
            infl(Model::MobileNetV2),
            infl(Model::AlexNet)
        );
    }

    #[test]
    fn roundtrip_names() {
        for m in Model::ALL {
            assert_eq!(m.name().parse::<Model>().unwrap(), m);
        }
        assert!("nope".parse::<Model>().is_err());
    }

    #[test]
    fn evaluated_subset() {
        for m in Model::EVALUATED {
            assert!(Model::ALL.contains(&m));
        }
    }
}
