//! Network-in-Network (Lin et al.), cited by the paper as a
//! line-structure DNN (§3.1). ImageNet variant: three mlpconv blocks
//! plus a 1000-way mlpconv head with global average pooling.

use mcdnn_graph::{Activation, DnnGraph, GraphError, LayerKind as L, LineDnn, NodeId, TensorShape};

/// Build the NiN DAG (line structure).
pub fn graph() -> DnnGraph {
    let mut b = DnnGraph::builder("nin");
    let relu = || L::Act(Activation::ReLU);
    let mut prev: NodeId = b.input(TensorShape::chw(3, 224, 224));
    // mlpconv 1: 11x11/4 then two 1x1 "micro MLP" convs.
    prev = b.chain(
        prev,
        [
            L::conv(96, 11, 4, 0),
            relu(),
            L::conv(96, 1, 1, 0),
            relu(),
            L::conv(96, 1, 1, 0),
            relu(),
            L::maxpool(3, 2),
        ],
    );
    // mlpconv 2.
    prev = b.chain(
        prev,
        [
            L::conv(256, 5, 1, 2),
            relu(),
            L::conv(256, 1, 1, 0),
            relu(),
            L::conv(256, 1, 1, 0),
            relu(),
            L::maxpool(3, 2),
        ],
    );
    // mlpconv 3.
    prev = b.chain(
        prev,
        [
            L::conv(384, 3, 1, 1),
            relu(),
            L::conv(384, 1, 1, 0),
            relu(),
            L::conv(384, 1, 1, 0),
            relu(),
            L::maxpool(3, 2),
            L::Dropout,
        ],
    );
    // Head: 1000-channel mlpconv + global average pooling.
    b.chain(
        prev,
        [
            L::conv(1024, 3, 1, 1),
            relu(),
            L::conv(1024, 1, 1, 0),
            relu(),
            L::conv(1000, 1, 1, 0),
            relu(),
            L::GlobalAvgPool,
            L::Flatten,
        ],
    );
    b.build().expect("nin definition is valid")
}

/// NiN as a line DNN.
pub fn line() -> Result<LineDnn, GraphError> {
    LineDnn::from_graph(&graph())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_line_structure() {
        assert!(graph().is_line_structure());
    }

    #[test]
    fn output_is_1000_way() {
        let g = graph();
        let sink = g.sinks()[0];
        assert_eq!(g.node(sink).output, TensorShape::flat(1000));
    }

    #[test]
    fn params_magnitude() {
        // NiN-ImageNet ≈ 7.6 M parameters (no FC layers).
        let m = graph().total_params() as f64 / 1e6;
        assert!((6.0..9.0).contains(&m), "NiN params {m} M out of band");
    }
}
