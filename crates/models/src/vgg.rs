//! VGG-16 (Simonyan & Zisserman), cited by the paper as a canonical
//! line-structure DNN (§3.1).

use mcdnn_graph::{Activation, DnnGraph, GraphError, LayerKind as L, LineDnn, NodeId, TensorShape};

/// VGG-16 configuration "D": conv channel plan per stage.
const STAGES_D: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];

/// VGG-19 configuration "E".
const STAGES_E: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)];

/// Build the VGG-16 DAG (line structure).
pub fn graph() -> DnnGraph {
    build("vgg16", &STAGES_D)
}

/// Build the VGG-19 DAG (line structure).
pub fn graph19() -> DnnGraph {
    build("vgg19", &STAGES_E)
}

fn build(name: &str, stages: &[(usize, usize); 5]) -> DnnGraph {
    let mut b = DnnGraph::builder(name);
    let relu = || L::Act(Activation::ReLU);
    let mut prev: NodeId = b.input(TensorShape::chw(3, 224, 224));
    for &(channels, convs) in stages {
        for _ in 0..convs {
            prev = b.chain(prev, [L::conv(channels, 3, 1, 1), relu()]);
        }
        prev = b.layer_after(prev, L::maxpool(2, 2));
    }
    b.chain(
        prev,
        [
            L::Flatten,
            L::dense(4096),
            relu(),
            L::Dropout,
            L::dense(4096),
            relu(),
            L::Dropout,
            L::dense(1000),
        ],
    );
    b.build().expect("vgg definition is valid")
}

/// VGG-16 as a line DNN.
pub fn line() -> Result<LineDnn, GraphError> {
    LineDnn::from_graph(&graph())
}

/// VGG-19 as a line DNN.
pub fn line19() -> Result<LineDnn, GraphError> {
    LineDnn::from_graph(&graph19())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_line_structure() {
        assert!(graph().is_line_structure());
    }

    #[test]
    fn parameter_count_matches_reference() {
        // VGG-16: 138,357,544 parameters.
        assert_eq!(graph().total_params(), 138_357_544);
    }

    #[test]
    fn flops_magnitude() {
        // ~15.5 GMACs = ~31 GFLOPs.
        let gflops = graph().total_flops() as f64 / 1e9;
        assert!(
            (29.0..33.0).contains(&gflops),
            "VGG16 FLOPs {gflops} GF out of band"
        );
    }

    #[test]
    fn vgg19_parameter_count_matches_reference() {
        // VGG-19: 143,667,240 parameters.
        assert_eq!(graph19().total_params(), 143_667_240);
    }

    #[test]
    fn vgg19_is_deeper_than_vgg16() {
        assert!(graph19().len() > graph().len());
        assert!(graph19().total_flops() > graph().total_flops());
        assert!(graph19().is_line_structure());
    }

    #[test]
    fn final_pool_shape() {
        let g = graph();
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.output == TensorShape::chw(512, 7, 7)));
    }
}
