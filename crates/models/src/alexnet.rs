//! AlexNet (torchvision variant), the paper's primary line-structure
//! workload (Figs. 4, 11, 12, 13, Table 1).
//!
//! The paper's prototype runs PyTorch models, so we follow the
//! `torchvision.models.alexnet` definition: 224×224 input, channel plan
//! 64/192/384/256/256, three FC layers of 4096/4096/1000. The network is
//! strictly sequential — the paper's Fig. 4 per-layer measurements group
//! conv+ReLU(+pool) into "blocks"; we keep individual layers and expose
//! the 8-block view through virtual-block clustering.

use mcdnn_graph::{DnnGraph, GraphError, LayerKind as L, LineDnn, TensorShape};

/// Build the AlexNet DAG (line structure, 21 compute layers + input).
pub fn graph() -> DnnGraph {
    let mut b = DnnGraph::builder("alexnet");
    let i = b.input(TensorShape::chw(3, 224, 224));
    let relu = || L::Act(mcdnn_graph::Activation::ReLU);
    let mut prev = i;
    // Feature extractor.
    prev = b.chain(
        prev,
        [
            L::Conv2d {
                out_channels: 64,
                kernel: 11,
                stride: 4,
                padding: 2,
                groups: 1,
                bias: true,
            },
            relu(),
            L::maxpool(3, 2),
            L::Conv2d {
                out_channels: 192,
                kernel: 5,
                stride: 1,
                padding: 2,
                groups: 1,
                bias: true,
            },
            relu(),
            L::maxpool(3, 2),
            L::conv(384, 3, 1, 1),
            relu(),
            L::conv(256, 3, 1, 1),
            relu(),
            L::conv(256, 3, 1, 1),
            relu(),
            L::maxpool(3, 2),
        ],
    );
    // Classifier.
    b.chain(
        prev,
        [
            L::Flatten,
            L::Dropout,
            L::dense(4096),
            relu(),
            L::Dropout,
            L::dense(4096),
            relu(),
            L::dense(1000),
        ],
    );
    b.build().expect("alexnet definition is valid")
}

/// AlexNet as a line DNN (every layer a cut candidate).
pub fn line() -> Result<LineDnn, GraphError> {
    LineDnn::from_graph(&graph())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdnn_graph::cluster::cluster_virtual_blocks;

    #[test]
    fn is_line_structure() {
        assert!(graph().is_line_structure());
    }

    #[test]
    fn parameter_count_matches_torchvision() {
        // torchvision alexnet: 61,100,840 parameters.
        assert_eq!(graph().total_params(), 61_100_840);
    }

    #[test]
    fn flops_magnitude() {
        // ~0.71 GMACs = ~1.43 GFLOPs for 224x224 (published profiling).
        let gflops = graph().total_flops() as f64 / 1e9;
        assert!(
            (1.3..1.6).contains(&gflops),
            "AlexNet FLOPs {gflops} GF out of expected band"
        );
    }

    #[test]
    fn feature_map_shapes() {
        let g = graph();
        let shapes: Vec<String> = g.nodes().iter().map(|n| n.output.to_string()).collect();
        // conv1 output and final pool output (canonical checkpoints).
        assert!(shapes.contains(&"[64, 55, 55]".to_string()));
        assert!(shapes.contains(&"[256, 6, 6]".to_string()));
        assert_eq!(shapes.last().unwrap(), "[1000]");
    }

    #[test]
    fn clustered_volume_is_monotone() {
        let l = line().unwrap();
        let (clustered, _) = cluster_virtual_blocks(&l);
        assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(
            &clustered
        ));
        // AlexNet's natural blocks: pools and FCs shrink the volume; the
        // clustered view should keep a useful number of cut candidates.
        assert!(
            clustered.k() >= 5,
            "expected >=5 clustered blocks, got {}",
            clustered.k()
        );
    }

    #[test]
    fn input_volume() {
        assert_eq!(line().unwrap().input_bytes(), 3 * 224 * 224 * 4);
    }
}
