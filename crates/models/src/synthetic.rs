//! Synthetic DNNs: the paper's AlexNet′ (Fig. 11) and parametric line
//! generators used by property tests and ablation benches.
//!
//! The paper observes (§3.2) that for typical line DNNs the computation
//! workload grows ≈ linearly with the cut depth while the offload volume
//! decays ≈ exponentially. AlexNet′ is AlexNet with its communication
//! curve replaced by samples from the fitted exponential — on it, the
//! continuous-domain optimality conditions of Theorem 5.2 hold almost
//! exactly, which is why the paper uses it to validate JPS against brute
//! force.

use mcdnn_graph::{cluster_virtual_blocks, LineDnn, LineLayer};
use mcdnn_rng::Rng;

use crate::alexnet;

/// Fit `log(y) = a + b·x` by least squares and return `(a, b)`.
///
/// Points with `y == 0` are skipped (log undefined); at least two valid
/// points are required.
pub fn fit_log_linear(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let valid: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, y)| y > 0.0)
        .map(|&(x, y)| (x, y.ln()))
        .collect();
    if valid.len() < 2 {
        return None;
    }
    let n = valid.len() as f64;
    let sx: f64 = valid.iter().map(|p| p.0).sum();
    let sy: f64 = valid.iter().map(|p| p.1).sum();
    let sxx: f64 = valid.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = valid.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

/// AlexNet′: AlexNet (clustered) with every interior offload volume
/// replaced by the fitted exponential `exp(a + b·l)` (paper Fig. 11).
pub fn alexnet_prime() -> LineDnn {
    let base = alexnet::line().expect("alexnet is a line");
    let (clustered, _) = cluster_virtual_blocks(&base);
    let points: Vec<(f64, f64)> = (1..clustered.k())
        .map(|l| (l as f64, clustered.offload_bytes(l) as f64))
        .collect();
    let (a, b) = fit_log_linear(&points).expect("alexnet volume curve is fittable");
    let layers: Vec<LineLayer> = clustered
        .layers()
        .iter()
        .enumerate()
        .map(|(idx, layer)| {
            let l = idx + 1;
            let out_bytes = if l == clustered.k() {
                layer.out_bytes
            } else {
                (a + b * l as f64).exp().round().max(1.0) as usize
            };
            LineLayer {
                name: layer.name.clone(),
                flops: layer.flops,
                out_bytes,
                nodes: layer.nodes.clone(),
            }
        })
        .collect();
    LineDnn::from_parts("alexnet_prime", clustered.input_bytes(), layers)
}

/// Ideal synthetic line DNN: per-layer FLOPs constant (`f` exactly
/// linear), offload volume exactly exponential with the given decay
/// factor per layer.
pub fn exponential_line(
    name: impl Into<String>,
    k: usize,
    flops_per_layer: u64,
    input_bytes: usize,
    decay: f64,
) -> LineDnn {
    assert!(k >= 1, "need at least one layer");
    assert!((0.0..1.0).contains(&decay), "decay must be in (0,1)");
    let layers = (1..=k)
        .map(|l| LineLayer {
            name: format!("l{l}"),
            flops: flops_per_layer,
            out_bytes: ((input_bytes as f64) * decay.powi(l as i32)).round().max(1.0) as usize,
            nodes: vec![],
        })
        .collect();
    LineDnn::from_parts(name, input_bytes, layers)
}

/// Random line DNN with non-increasing offload volume — the post-
/// clustering form every partition algorithm consumes. FLOPs per layer
/// are drawn from `flops_range`; volumes shrink by a random factor in
/// `shrink_range` per layer.
pub fn random_monotone_line(
    rng: &mut Rng,
    k: usize,
    input_bytes: usize,
    flops_range: (u64, u64),
    shrink_range: (f64, f64),
) -> LineDnn {
    assert!(k >= 1);
    assert!(shrink_range.0 > 0.0 && shrink_range.1 < 1.0 && shrink_range.0 <= shrink_range.1);
    let mut volume = input_bytes as f64;
    let layers = (1..=k)
        .map(|l| {
            volume *= rng.gen_range(shrink_range.0..=shrink_range.1);
            LineLayer {
                name: format!("r{l}"),
                flops: rng.gen_range(flops_range.0..=flops_range.1),
                out_bytes: volume.round().max(1.0) as usize,
                nodes: vec![],
            }
        })
        .collect();
    LineDnn::from_parts("random_line", input_bytes, layers)
}

/// Random line DNN with *arbitrary* (possibly locally increasing) offload
/// volumes — exercises the clustering path.
pub fn random_bumpy_line(
    rng: &mut Rng,
    k: usize,
    input_bytes: usize,
    flops_range: (u64, u64),
) -> LineDnn {
    assert!(k >= 1);
    let layers = (1..=k)
        .map(|l| LineLayer {
            name: format!("b{l}"),
            flops: rng.gen_range(flops_range.0..=flops_range.1),
            out_bytes: rng.gen_range(1..=2 * input_bytes.max(2)),
            nodes: vec![],
        })
        .collect();
    LineDnn::from_parts("bumpy_line", input_bytes, layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_linear_fit_recovers_exact_exponential() {
        let pts: Vec<(f64, f64)> = (1..10)
            .map(|i| (i as f64, (5.0 - 0.7 * i as f64).exp()))
            .collect();
        let (a, b) = fit_log_linear(&pts).unwrap();
        assert!((a - 5.0).abs() < 1e-9, "a = {a}");
        assert!((b + 0.7).abs() < 1e-9, "b = {b}");
    }

    #[test]
    fn log_linear_fit_rejects_degenerate_input() {
        assert!(fit_log_linear(&[(1.0, 2.0)]).is_none());
        assert!(fit_log_linear(&[(1.0, 0.0), (2.0, 0.0)]).is_none());
        // Same x for all points -> singular.
        assert!(fit_log_linear(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn alexnet_prime_volume_is_monotone_exponential() {
        let p = alexnet_prime();
        for l in 2..p.k() {
            assert!(
                p.offload_bytes(l) < p.offload_bytes(l - 1),
                "volume must decrease at {l}"
            );
        }
        // Ratio between consecutive interior volumes is constant (within
        // rounding): the signature of an exact exponential.
        let r1 = p.offload_bytes(2) as f64 / p.offload_bytes(1) as f64;
        let r2 = p.offload_bytes(3) as f64 / p.offload_bytes(2) as f64;
        assert!((r1 - r2).abs() < 0.02, "ratios {r1} vs {r2}");
    }

    #[test]
    fn alexnet_prime_keeps_compute() {
        let p = alexnet_prime();
        let (clustered, _) =
            mcdnn_graph::cluster_virtual_blocks(&alexnet::line().unwrap());
        assert_eq!(p.total_flops(), clustered.total_flops());
        assert_eq!(p.k(), clustered.k());
    }

    #[test]
    fn exponential_line_shapes() {
        let l = exponential_line("e", 8, 1000, 1 << 20, 0.5);
        assert_eq!(l.k(), 8);
        for i in 1..8 {
            let ratio = l.offload_bytes(i + 1).max(1) as f64 / l.offload_bytes(i) as f64;
            if i + 1 < 8 {
                assert!((ratio - 0.5).abs() < 0.01);
            }
        }
        assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&l));
    }

    #[test]
    fn random_monotone_line_is_monotone() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..20 {
            let l = random_monotone_line(&mut rng, 12, 1 << 16, (100, 10_000), (0.3, 0.9));
            assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&l));
        }
    }

    #[test]
    fn bumpy_line_clusters_clean() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..20 {
            let l = random_bumpy_line(&mut rng, 15, 4096, (10, 1000));
            let (c, _) = mcdnn_graph::cluster_virtual_blocks(&l);
            assert!(mcdnn_graph::cluster::is_strictly_decreasing_volume(&c));
            assert_eq!(c.total_flops(), l.total_flops());
        }
    }
}
