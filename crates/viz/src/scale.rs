//! Axis scales and tick generation.

/// A linear or log₁₀ mapping from data space to pixel space.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    min: f64,
    max: f64,
    px_lo: f64,
    px_hi: f64,
    log: bool,
}

impl Scale {
    /// Linear scale over `[min, max]` mapped to `[px_lo, px_hi]`.
    pub fn linear(min: f64, max: f64, px_lo: f64, px_hi: f64) -> Self {
        assert!(max > min, "degenerate domain {min}..{max}");
        Scale {
            min,
            max,
            px_lo,
            px_hi,
            log: false,
        }
    }

    /// Log₁₀ scale; requires strictly positive domain.
    pub fn log10(min: f64, max: f64, px_lo: f64, px_hi: f64) -> Self {
        assert!(min > 0.0 && max > min, "log domain must be positive, {min}..{max}");
        Scale {
            min,
            max,
            px_lo,
            px_hi,
            log: true,
        }
    }

    /// Map a data value to pixels (clamped to the domain).
    pub fn px(&self, v: f64) -> f64 {
        let v = v.clamp(self.min, self.max);
        let t = if self.log {
            (v.ln() - self.min.ln()) / (self.max.ln() - self.min.ln())
        } else {
            (v - self.min) / (self.max - self.min)
        };
        self.px_lo + t * (self.px_hi - self.px_lo)
    }

    /// Domain bounds.
    pub fn domain(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// Whether this is a log scale.
    pub fn is_log(&self) -> bool {
        self.log
    }

    /// Tick positions for this scale (powers of 10 when log).
    pub fn ticks(&self, target: usize) -> Vec<f64> {
        if self.log {
            let lo = self.min.log10().floor() as i32;
            let hi = self.max.log10().ceil() as i32;
            (lo..=hi)
                .map(|e| 10f64.powi(e))
                .filter(|&v| v >= self.min * 0.999 && v <= self.max * 1.001)
                .collect()
        } else {
            nice_ticks(self.min, self.max, target)
        }
    }
}

/// "Nice" tick positions covering `[min, max]` with roughly `target`
/// intervals (1/2/5 × 10ᵏ steps).
pub fn nice_ticks(min: f64, max: f64, target: usize) -> Vec<f64> {
    assert!(max > min && target >= 1);
    let raw_step = (max - min) / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (min / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= max + step * 1e-9 {
        // Snap tiny float error to zero.
        ticks.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
        t += step;
    }
    ticks
}

/// Compact number formatting for tick labels.
pub fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e4 {
        format!("{:.0}k", v / 1e3)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        let s = format!("{v:.1}");
        s.strip_suffix(".0").map(str::to_string).unwrap_or(s)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_mapping() {
        let s = Scale::linear(0.0, 10.0, 100.0, 200.0);
        assert_eq!(s.px(0.0), 100.0);
        assert_eq!(s.px(10.0), 200.0);
        assert_eq!(s.px(5.0), 150.0);
        assert_eq!(s.px(-5.0), 100.0); // clamped
    }

    #[test]
    fn inverted_pixel_range_for_y_axes() {
        // SVG y grows downward: map data-up to pixel-down.
        let s = Scale::linear(0.0, 1.0, 300.0, 20.0);
        assert_eq!(s.px(0.0), 300.0);
        assert_eq!(s.px(1.0), 20.0);
    }

    #[test]
    fn log_mapping() {
        let s = Scale::log10(1.0, 1000.0, 0.0, 300.0);
        assert!((s.px(1.0) - 0.0).abs() < 1e-9);
        assert!((s.px(1000.0) - 300.0).abs() < 1e-9);
        assert!((s.px(10.0) - 100.0).abs() < 1e-9);
        assert_eq!(s.ticks(4), vec![1.0, 10.0, 100.0, 1000.0]);
    }

    #[test]
    fn nice_ticks_are_nice() {
        let t = nice_ticks(0.0, 100.0, 5);
        assert_eq!(t, vec![0.0, 20.0, 40.0, 60.0, 80.0, 100.0]);
        let t2 = nice_ticks(0.0, 7.3, 5);
        assert!(t2.contains(&0.0) && t2.last().copied().unwrap() <= 7.3);
        // Steps are uniform.
        for w in t2.windows(2) {
            assert!((w[1] - w[0] - (t2[1] - t2[0])).abs() < 1e-9);
        }
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(5.0), "5");
        assert_eq!(fmt_tick(5.5), "5.5");
        assert_eq!(fmt_tick(150.0), "150");
        assert_eq!(fmt_tick(25_000.0), "25k");
        assert_eq!(fmt_tick(2_500_000.0), "2.5M");
        assert_eq!(fmt_tick(0.25), "0.25");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_domain_rejected() {
        Scale::linear(1.0, 1.0, 0.0, 10.0);
    }
}
