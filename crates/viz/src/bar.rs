//! Grouped bar charts (Fig. 12 style: strategy bars per model).

use std::fmt::Write as _;

use crate::scale::{fmt_tick, nice_ticks, Scale};
use crate::{escape, PALETTE};

/// A grouped bar chart: `groups` along the x axis, one bar per
/// `series` within each group.
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y axis label.
    pub y_label: String,
    /// Group (x category) labels.
    pub groups: Vec<String>,
    /// `(series label, one value per group)`; `None` = missing bar
    /// (the paper omits CO at 3G as off-chart).
    pub series: Vec<(String, Vec<Option<f64>>)>,
    /// Pixel width.
    pub width: u32,
    /// Pixel height.
    pub height: u32,
}

impl BarChart {
    /// New empty chart with default dimensions.
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            y_label: y_label.into(),
            groups: Vec::new(),
            series: Vec::new(),
            width: 640,
            height: 400,
        }
    }

    /// Set group labels (builder style).
    pub fn with_groups(mut self, groups: Vec<String>) -> Self {
        self.groups = groups;
        self
    }

    /// Add a series; must supply one value (or `None`) per group.
    pub fn with_series(mut self, label: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        assert_eq!(
            values.len(),
            self.groups.len(),
            "one value per group required"
        );
        self.series.push((label.into(), values));
        self
    }

    /// Render as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let (ml, mr, mt, mb) = (64.0, 120.0, 34.0, 52.0);
        let mut out = String::new();
        let _ = write!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">"
        );
        let _ = write!(
            out,
            "<text x=\"{x}\" y=\"20\" font-size=\"14\" text-anchor=\"middle\" \
             font-weight=\"bold\">{t}</text>",
            x = (ml + w - mr) / 2.0,
            t = escape(&self.title)
        );
        let max = self
            .series
            .iter()
            .flat_map(|(_, vs)| vs.iter().flatten())
            .fold(0.0f64, |a, &b| a.max(b));
        if max <= 0.0 || self.groups.is_empty() {
            out.push_str("<text x=\"20\" y=\"40\" font-size=\"12\">(no data)</text></svg>");
            return out;
        }
        let top = nice_ticks(0.0, max * 1.05, 5).last().copied().unwrap_or(max);
        let ys = Scale::linear(0.0, top.max(max), h - mb, mt);

        for ty in ys.ticks(5) {
            let y = ys.px(ty);
            let _ = write!(
                out,
                "<line x1=\"{ml}\" y1=\"{y:.1}\" x2=\"{x2}\" y2=\"{y:.1}\" stroke=\"#e5e5e5\"/>\
                 <text x=\"{tx}\" y=\"{ty2:.1}\" font-size=\"10\" text-anchor=\"end\">{lbl}</text>",
                x2 = w - mr,
                tx = ml - 6.0,
                ty2 = y + 3.0,
                lbl = fmt_tick(ty)
            );
        }
        let _ = write!(
            out,
            "<line x1=\"{ml}\" y1=\"{yb}\" x2=\"{xr}\" y2=\"{yb}\" stroke=\"#333\"/>\
             <line x1=\"{ml}\" y1=\"{mt}\" x2=\"{ml}\" y2=\"{yb}\" stroke=\"#333\"/>\
             <text x=\"16\" y=\"{ycl}\" font-size=\"11\" text-anchor=\"middle\" \
             transform=\"rotate(-90 16 {ycl})\">{ylbl}</text>",
            yb = h - mb,
            xr = w - mr,
            ycl = (mt + h - mb) / 2.0,
            ylbl = escape(&self.y_label)
        );

        let plot_w = w - ml - mr;
        let group_w = plot_w / self.groups.len() as f64;
        let bar_w = (group_w * 0.8) / self.series.len().max(1) as f64;
        for (gi, group) in self.groups.iter().enumerate() {
            let gx = ml + gi as f64 * group_w;
            let _ = write!(
                out,
                "<text x=\"{x:.1}\" y=\"{y}\" font-size=\"11\" text-anchor=\"middle\">{lbl}</text>",
                x = gx + group_w / 2.0,
                y = h - mb + 16.0,
                lbl = escape(group)
            );
            for (si, (_, values)) in self.series.iter().enumerate() {
                if let Some(v) = values[gi] {
                    let x = gx + group_w * 0.1 + si as f64 * bar_w;
                    let y = ys.px(v);
                    let _ = write!(
                        out,
                        "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bw:.1}\" height=\"{bh:.1}\" \
                         fill=\"{color}\"><title>{lbl}: {v:.1}</title></rect>",
                        bw = bar_w * 0.92,
                        bh = (h - mb) - y,
                        color = PALETTE[si % PALETTE.len()],
                        lbl = escape(&self.series[si].0),
                    );
                }
            }
        }
        for (si, (label, _)) in self.series.iter().enumerate() {
            let ly = mt + 16.0 * si as f64;
            let _ = write!(
                out,
                "<rect x=\"{lx}\" y=\"{ry:.1}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\
                 <text x=\"{tx}\" y=\"{ty:.1}\" font-size=\"11\">{lbl}</text>",
                lx = w - mr + 10.0,
                ry = ly - 9.0,
                color = PALETTE[si % PALETTE.len()],
                tx = w - mr + 28.0,
                ty = ly + 1.5,
                lbl = escape(label)
            );
        }
        out.push_str("</svg>");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        BarChart::new("Fig 12-style", "per-job ms")
            .with_groups(vec!["alexnet".into(), "resnet18".into()])
            .with_series("LO", vec![Some(700.0), Some(1800.0)])
            .with_series("JPS", vec![Some(90.0), Some(250.0)])
            .with_series("CO", vec![None, Some(265.0)]) // off-chart cell
    }

    #[test]
    fn renders_bars_and_legend() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        // 5 bars drawn (one None skipped) + 3 legend swatches.
        assert_eq!(svg.matches("<title>").count(), 5);
        assert!(svg.contains(">LO</text>"));
        assert!(svg.contains(">alexnet</text>"));
    }

    #[test]
    fn missing_values_are_skipped_not_zero() {
        let svg = chart().to_svg();
        assert!(!svg.contains("CO: 0.0"));
    }

    #[test]
    fn empty_chart_degrades() {
        let svg = BarChart::new("e", "y").to_svg();
        assert!(svg.contains("(no data)"));
    }

    #[test]
    #[should_panic(expected = "one value per group")]
    fn mismatched_series_length_rejected() {
        BarChart::new("b", "y")
            .with_groups(vec!["a".into()])
            .with_series("s", vec![Some(1.0), Some(2.0)]);
    }
}
