//! Line charts (Fig. 13 / Fig. 14 style).

use std::fmt::Write as _;

use crate::scale::{fmt_tick, Scale};
use crate::{escape, PALETTE};

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data space, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A multi-series line chart with axes, ticks and a legend.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Use a log₁₀ y axis (the paper's Fig. 13 does).
    pub log_y: bool,
    /// Series to draw.
    pub series: Vec<Series>,
    /// Pixel width of the full document.
    pub width: u32,
    /// Pixel height of the full document.
    pub height: u32,
}

impl LineChart {
    /// A chart with default dimensions (640×400).
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_y: false,
            series: Vec::new(),
            width: 640,
            height: 400,
        }
    }

    /// Add a series (builder style).
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Switch the y axis to log₁₀.
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Data bounds across all series.
    fn bounds(&self) -> Option<((f64, f64), (f64, f64))> {
        let mut pts = self.series.iter().flat_map(|s| s.points.iter());
        let first = pts.next()?;
        let mut xb = (first.0, first.0);
        let mut yb = (first.1, first.1);
        for &(x, y) in pts {
            xb = (xb.0.min(x), xb.1.max(x));
            yb = (yb.0.min(y), yb.1.max(y));
        }
        Some((xb, yb))
    }

    /// Render the chart as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let (ml, mr, mt, mb) = (64.0, 150.0, 34.0, 48.0);
        let mut out = String::new();
        let _ = write!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">"
        );
        let _ = write!(
            out,
            "<text x=\"{x}\" y=\"20\" font-size=\"14\" text-anchor=\"middle\" \
             font-weight=\"bold\">{t}</text>",
            x = (ml + w - mr) / 2.0,
            t = escape(&self.title)
        );
        let Some(((x0, x1), (y0, y1))) = self.bounds() else {
            out.push_str("<text x=\"20\" y=\"40\" font-size=\"12\">(no data)</text></svg>");
            return out;
        };
        let pad = |a: f64, b: f64| if a == b { (a - 1.0, b + 1.0) } else { (a, b) };
        let (x0, x1) = pad(x0, x1);
        let (mut y0, y1) = pad(y0, y1);
        if self.log_y {
            y0 = y0.max(y1 * 1e-4).max(1e-12);
        }
        let xs = Scale::linear(x0, x1, ml, w - mr);
        let ys = if self.log_y {
            Scale::log10(y0, y1, h - mb, mt)
        } else {
            Scale::linear(y0.min(0.0), y1, h - mb, mt)
        };

        // Grid + ticks.
        for ty in ys.ticks(5) {
            let y = ys.px(ty);
            let _ = write!(
                out,
                "<line x1=\"{ml}\" y1=\"{y:.1}\" x2=\"{x2}\" y2=\"{y:.1}\" \
                 stroke=\"#e5e5e5\"/>\
                 <text x=\"{tx}\" y=\"{ty2:.1}\" font-size=\"10\" text-anchor=\"end\">{lbl}</text>",
                x2 = w - mr,
                tx = ml - 6.0,
                ty2 = y + 3.0,
                lbl = fmt_tick(ty)
            );
        }
        for tx in xs.ticks(6) {
            let x = xs.px(tx);
            let _ = write!(
                out,
                "<line x1=\"{x:.1}\" y1=\"{y1p}\" x2=\"{x:.1}\" y2=\"{y2p}\" stroke=\"#e5e5e5\"/>\
                 <text x=\"{x:.1}\" y=\"{ty}\" font-size=\"10\" text-anchor=\"middle\">{lbl}</text>",
                y1p = mt,
                y2p = h - mb,
                ty = h - mb + 14.0,
                lbl = fmt_tick(tx)
            );
        }
        // Axes.
        let _ = write!(
            out,
            "<line x1=\"{ml}\" y1=\"{yb}\" x2=\"{xr}\" y2=\"{yb}\" stroke=\"#333\"/>\
             <line x1=\"{ml}\" y1=\"{mt}\" x2=\"{ml}\" y2=\"{yb}\" stroke=\"#333\"/>",
            yb = h - mb,
            xr = w - mr,
        );
        let _ = write!(
            out,
            "<text x=\"{x}\" y=\"{y}\" font-size=\"11\" text-anchor=\"middle\">{lbl}</text>",
            x = (ml + w - mr) / 2.0,
            y = h - 10.0,
            lbl = escape(&self.x_label)
        );
        let _ = write!(
            out,
            "<text x=\"16\" y=\"{y}\" font-size=\"11\" text-anchor=\"middle\" \
             transform=\"rotate(-90 16 {y})\">{lbl}</text>",
            y = (mt + h - mb) / 2.0,
            lbl = escape(&self.y_label)
        );

        // Series + legend.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let mut d = String::new();
            for (j, &(x, y)) in s.points.iter().enumerate() {
                let cmd = if j == 0 { 'M' } else { 'L' };
                let _ = write!(d, "{cmd}{:.1},{:.1} ", xs.px(x), ys.px(y));
            }
            let _ = write!(
                out,
                "<path d=\"{d}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.8\"/>"
            );
            for &(x, y) in &s.points {
                let _ = write!(
                    out,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.2\" fill=\"{color}\"/>",
                    xs.px(x),
                    ys.px(y)
                );
            }
            let ly = mt + 16.0 * i as f64;
            let _ = write!(
                out,
                "<line x1=\"{lx}\" y1=\"{ly}\" x2=\"{lx2}\" y2=\"{ly}\" stroke=\"{color}\" \
                 stroke-width=\"2\"/>\
                 <text x=\"{tx}\" y=\"{ty:.1}\" font-size=\"11\">{lbl}</text>",
                lx = w - mr + 10.0,
                lx2 = w - mr + 30.0,
                tx = w - mr + 36.0,
                ty = ly + 3.5,
                lbl = escape(&s.label)
            );
        }
        out.push_str("</svg>");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart::new("demo", "bandwidth (Mbps)", "latency (ms)")
            .with_series(Series::new("LO", vec![(1.0, 700.0), (10.0, 700.0)]))
            .with_series(Series::new("JPS", vec![(1.0, 650.0), (10.0, 150.0)]))
    }

    #[test]
    fn renders_document_with_series_and_legend() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains(">LO</text>"));
        assert!(svg.contains(">JPS</text>"));
        assert!(svg.contains("latency (ms)"));
    }

    #[test]
    fn log_y_renders_power_ticks() {
        let svg = LineChart::new("log", "x", "y")
            .with_log_y()
            .with_series(Series::new("s", vec![(0.0, 10.0), (1.0, 10_000.0)]))
            .to_svg();
        assert!(svg.contains(">10k</text>"));
        assert!(svg.contains(">100</text>") || svg.contains(">1k</text>"));
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let svg = LineChart::new("e", "x", "y").to_svg();
        assert!(svg.contains("(no data)"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = LineChart::new("a<b>", "x&y", "z")
            .with_series(Series::new("s\"q\"", vec![(0.0, 1.0), (1.0, 2.0)]))
            .to_svg();
        assert!(svg.contains("a&lt;b&gt;"));
        assert!(svg.contains("x&amp;y"));
        assert!(svg.contains("s&quot;q&quot;"));
        assert!(!svg.contains("a<b>"));
    }

    #[test]
    fn single_point_series_does_not_panic() {
        let svg = LineChart::new("p", "x", "y")
            .with_series(Series::new("dot", vec![(5.0, 5.0)]))
            .to_svg();
        assert!(svg.contains("<circle"));
    }
}
