//! # mcdnn-viz
//!
//! Dependency-free SVG chart rendering, sized for regenerating the
//! paper's figures: line charts with linear or log-y axes
//! ([`LineChart`], Figs. 13–14 style) and grouped bar charts
//! ([`BarChart`], Fig. 12 style). Output is a standalone `<svg>`
//! document string the bench binaries write into `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bar;
pub mod line;
mod scale;

pub use bar::BarChart;
pub use line::{LineChart, Series};
pub use scale::{nice_ticks, Scale};

/// The categorical palette shared by both chart kinds.
pub const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
];

/// Escape text for inclusion in SVG/XML.
pub fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b & \"c\">"), "a&lt;b &amp; &quot;c&quot;&gt;");
        assert_eq!(escape("plain"), "plain");
    }
}
