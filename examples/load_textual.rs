//! Load a model from the textual `.dnn` format and plan it — the
//! no-Rust-required path a downstream user would take for an
//! unpublished architecture (also available as `mcdnn load --file …`).
//!
//! ```text
//! cargo run --release --example load_textual
//! ```

use mcdnn::prelude::*;
use mcdnn_graph::{cluster_virtual_blocks, collapse_to_line, parse_model};

const MODEL_TEXT: &str = r"
# A compact two-tower detector head, written by hand.
input:  input(3, 128, 128)
stem:   conv(24, k=3, s=2, p=1)
srelu:  relu
pool0:  maxpool(k=2, s=2)

# tower A: spatial detail
a1:     conv(32, k=3, p=1)      <- pool0
a1r:    relu
a2:     conv(32, k=3, p=1)
a2r:    relu

# tower B: wide context
b1:     conv(32, k=5, p=2)      <- pool0
b1r:    relu

merge:  concat                  <- a2r, b1r
pool1:  maxpool(k=2, s=2)
head:   conv(64, k=3, p=1)
hrelu:  relu
gap:    gavgpool
flat:   flatten
out:    dense(20)
";

fn main() {
    let graph = parse_model("two_tower", MODEL_TEXT).expect("model text is valid");
    println!(
        "parsed '{}': {} layers, {:.1} MFLOPs, {} structure",
        graph.name(),
        graph.len(),
        graph.total_flops() as f64 / 1e6,
        if graph.is_line_structure() { "line" } else { "general" }
    );

    let collapsed = collapse_to_line(&graph).expect("towers rejoin at the concat");
    let (clustered, _) = cluster_virtual_blocks(&collapsed);
    println!(
        "line view: {} cut candidates after clustering",
        clustered.k() + 1
    );

    let scenario = Scenario::new(
        clustered,
        DeviceModel::raspberry_pi4(),
        NetworkModel::new(6.0, 20.0),
        CloudModel::Device(DeviceModel::cloud_gtx1080()),
    );
    println!("\nplanning 12 jobs at 6 Mbps:");
    for strat in [Strategy::LocalOnly, Strategy::CloudOnly, Strategy::JpsBestMix] {
        let plan = scenario.plan(strat, 12);
        println!(
            "  {:>4}: {:7.1} ms  ({:5.1} ms/job)",
            strat.label(),
            plan.makespan_ms,
            plan.average_makespan_ms()
        );
    }
    let best = scenario.plan(Strategy::JpsBestMix, 12);
    println!("\nJPS* schedule:\n{}", best.gantt(scenario.profile()).to_ascii(64));
}
