//! Self-driving scenario (paper §1): a vehicle with six cameras runs
//! the same detection DNN on every frame of every camera — six
//! identical inference jobs per sensing tick, repeatedly.
//!
//! This example plans one tick's burst with every strategy, derives the
//! achievable sensing rate (ticks/second) from the per-burst makespan,
//! and replays the winning plan on the threaded pipeline executor to
//! confirm the schedule behaves under real concurrency.
//!
//! ```text
//! cargo run --release --example self_driving
//! ```

use mcdnn::prelude::*;

const CAMERAS: usize = 6;

fn main() {
    // Tiny-YOLOv2 is the classic line-structure detector (paper §3.1);
    // the vehicle's LTE link carries the uploads.
    let scenario = Scenario::paper_default(Model::TinyYoloV2, NetworkModel::four_g());

    println!(
        "detector: {} ({:.2} GFLOPs per frame), {} cameras, LTE uplink\n",
        scenario.line().name(),
        scenario.line().total_flops() as f64 / 1e9,
        CAMERAS
    );

    println!("| strategy | burst makespan (ms) | sensing rate (Hz) |");
    println!("|---|---|---|");
    let mut best: Option<Plan> = None;
    for s in [
        Strategy::LocalOnly,
        Strategy::CloudOnly,
        Strategy::PartitionOnly,
        Strategy::JpsBestMix,
    ] {
        let plan = scenario.plan(s, CAMERAS);
        println!(
            "| {} | {:.0} | {:.2} |",
            s.label(),
            plan.makespan_ms,
            1000.0 / plan.makespan_ms
        );
        if best
            .as_ref()
            .is_none_or(|b| plan.makespan_ms < b.makespan_ms)
        {
            best = Some(plan);
        }
    }
    let best = best.expect("strategies evaluated");
    println!(
        "\nwinner: {} with cuts {:?}",
        best.strategy.label(),
        best.cuts
    );

    // Replay on the threaded executor (logical clock: deterministic).
    let jobs = best.jobs(scenario.profile());
    let trace = mcdnn::sim::run_pipeline(&jobs, &best.order, &ExecutorConfig::default());
    println!(
        "threaded pipeline executor (with explicit cloud stage) measures {:.0} ms",
        trace.makespan_ms
    );
    // 2-stage plan vs 3-stage execution: the cloud remainder adds < 1%.
    assert!(trace.makespan_ms >= best.makespan_ms - 1e-9);
    assert!(trace.makespan_ms <= best.makespan_ms * 1.01);

    // Sustained operation: if a new burst arrives every `period`,
    // the uplink and CPU must each carry one burst per period. The
    // pipeline steady-state rate is limited by the busier resource.
    let f_total: f64 = jobs.iter().map(|j| j.compute_ms).sum();
    let g_total: f64 = jobs.iter().map(|j| j.comm_ms).sum();
    let steady_period = f_total.max(g_total);
    println!(
        "steady-state sensing rate with pipelined bursts: {:.2} Hz \
         (CPU load {:.0} ms, uplink load {:.0} ms per burst)",
        1000.0 / steady_period,
        f_total,
        g_total
    );
}
