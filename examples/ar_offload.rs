//! Augmented-reality scenario (paper §1): smart glasses generate a
//! burst of frames that must all be processed quickly, but the wireless
//! uplink quality drifts. The scheduler cannot read the bandwidth off a
//! config file — it has to *estimate* the communication model from
//! timed uploads, exactly like the paper's gRPC-timer + linear
//! regression pipeline (§6.1), then re-plan as conditions change.
//!
//! ```text
//! cargo run --release --example ar_offload
//! ```

use mcdnn::prelude::*;
use mcdnn_profile::measure::{fit_comm_model, measure_uploads};
use mcdnn_rng::Rng;

fn main() {
    let frames = 12; // one burst of AR frames
    let mut rng = Rng::seed_from_u64(2021);

    println!("AR glasses: {frames} MobileNet-v2 frames per burst; drifting Wi-Fi\n");
    println!("| true Mbps | estimated w0 (ms) | estimated Mbps | chosen cut(s) | makespan (ms) |");
    println!("|---|---|---|---|---|");

    for true_mbps in [18.88, 9.0, 3.5, 1.1, 30.0] {
        let true_net = NetworkModel::new(true_mbps, 12.0);

        // 1. Time some uploads of varying size (noisy measurements).
        let sizes: Vec<usize> = (1..=24).map(|i| i * 40_000).collect();
        let normalizer = NetworkModel::new(1.0, 0.0); // ratio in raw bit-ms
        let samples: Vec<(f64, f64)> = measure_uploads(&mut rng, &true_net, &sizes, 0.08)
            .into_iter()
            .zip(&sizes)
            .map(|((_, t), &s)| (normalizer.ratio(s), t))
            .collect();

        // 2. Fit t = w0 + w1 * (bits/1e3): w1 = 1/Mbps.
        let fit = fit_comm_model(&samples).expect("enough samples");
        let est_mbps = 1.0 / fit.w1;
        let est_net = NetworkModel::new(est_mbps, fit.w0.max(0.0));

        // 3. Plan this burst against the *estimated* network.
        let scenario = Scenario::paper_default(Model::MobileNetV2, est_net);
        let plan = scenario.plan(Strategy::JpsBestMix, frames);
        let mut cuts = plan.cuts.clone();
        cuts.sort_unstable();
        cuts.dedup();

        // 4. Evaluate the plan under the TRUE network (what actually
        //    happens on air).
        let truth = Scenario::paper_default(Model::MobileNetV2, true_net);
        let actual =
            mcdnn_partition::Plan::from_cuts(Strategy::JpsBestMix, truth.profile(), plan.cuts);

        println!(
            "| {true_mbps} | {:.1} | {:.2} | {:?} | {:.0} |",
            fit.w0, est_mbps, cuts, actual.makespan_ms
        );

        // The estimation is good enough that planning against it costs
        // little versus planning with perfect knowledge.
        let oracle = truth.plan(Strategy::JpsBestMix, frames);
        assert!(
            actual.makespan_ms <= oracle.makespan_ms * 1.15 + 1.0,
            "estimated plan {:.0} ms too far from oracle {:.0} ms",
            actual.makespan_ms,
            oracle.makespan_ms
        );
    }

    println!("\nplans track the drifting link: deep cuts (local-leaning) on slow links,");
    println!("shallow cuts (cloud-leaning) as bandwidth recovers — re-fitted per burst.");
}
