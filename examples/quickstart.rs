//! Quickstart: plan 10 AlexNet inference jobs on a Raspberry-Pi-class
//! device over Wi-Fi, compare every strategy, and look at the winning
//! schedule's Gantt chart.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mcdnn::prelude::*;

fn main() {
    let n = 10;
    let scenario = Scenario::paper_default(Model::AlexNet, NetworkModel::wifi());

    println!(
        "model: {} ({} cut candidates after clustering)",
        scenario.line().name(),
        scenario.profile().k() + 1
    );
    println!(
        "platform: {} + {:.2} Mbps uplink\n",
        scenario.mobile().name,
        scenario.network().bandwidth_mbps
    );

    println!("strategy comparison for {n} jobs:");
    println!("| strategy | makespan (ms) | per-job (ms) |");
    println!("|---|---|---|");
    let strategies = [
        Strategy::LocalOnly,
        Strategy::CloudOnly,
        Strategy::PartitionOnly,
        Strategy::Jps,
        Strategy::JpsBestMix,
    ];
    for s in strategies {
        let plan = scenario.plan(s, n);
        println!(
            "| {} | {:.1} | {:.1} |",
            s.label(),
            plan.makespan_ms,
            plan.average_makespan_ms()
        );
    }

    let plan = scenario.plan(Strategy::JpsBestMix, n);
    println!("\nJPS* cuts per job: {:?}", plan.cuts);
    println!("processing order:  {:?}", plan.order);
    println!("\nGantt (mobile compute row, uplink row):");
    print!("{}", plan.gantt(scenario.profile()).to_ascii(72));

    // Validate the plan on the discrete-event simulator.
    let des = simulate(
        &plan.jobs(scenario.profile()),
        &plan.order,
        &DesConfig::default(),
    );
    println!(
        "\nanalytic 2-stage makespan {:.1} ms; simulated with explicit cloud stage {:.1} ms",
        plan.makespan_ms, des.makespan_ms
    );
    // The simulator bills the cloud stage the paper's 2-stage model
    // declares negligible; the gap measures that assumption (< 1%).
    assert!(des.makespan_ms >= plan.makespan_ms - 1e-9);
    assert!(des.makespan_ms <= plan.makespan_ms * 1.01);
}
