//! Battery-aware planning: a delivery drone runs MobileNet-v2
//! inspections all day. Pure latency optimisation keeps the radio and
//! CPU hot; trading a little latency along the energy/latency Pareto
//! front extends flight time.
//!
//! ```text
//! cargo run --release --example battery_aware
//! ```

use mcdnn::prelude::*;
use mcdnn_partition::{min_energy_plan, pareto_front};
use mcdnn_profile::EnergyModel;

fn main() {
    let n = 40; // inspection burst
    // Long-range cellular link: the power amplifier dominates — TX
    // draws more than the CPU, so fast shallow cuts (big uploads) cost
    // battery and the latency/energy trade-off is real. (Over Wi-Fi,
    // where TX is cheap, offloading wins both and the front collapses
    // to one point — see the energy_pareto bench for the comparison.)
    let energy = EnergyModel::new(4.5, 7.0, 2.0);
    let scenario = Scenario::paper_default(Model::MobileNetV2, NetworkModel::new(12.0, 15.0));

    println!(
        "drone inspection: {n} MobileNet-v2 frames, 12 Mbps cellular uplink, \
         {:.1} W compute / {:.1} W radio / {:.1} W idle\n",
        energy.compute_watts, energy.tx_watts, energy.idle_watts
    );

    let front = pareto_front(scenario.profile(), n, &energy);
    println!("latency/energy Pareto front ({} points):", front.len());
    println!("| makespan (ms) | energy (J) | avg power (W) | cuts |");
    println!("|---|---|---|---|");
    for p in &front {
        let mut cuts = p.plan.cuts.clone();
        cuts.sort_unstable();
        cuts.dedup();
        println!(
            "| {:.0} | {:.1} | {:.2} | {:?} |",
            p.makespan_ms,
            p.energy_mj / 1e3,
            p.energy_mj / p.makespan_ms,
            cuts
        );
    }

    // Mission planning: the drone needs results within 1.25× of the
    // fastest possible; minimise energy under that budget.
    let fastest = &front[0];
    let budget = fastest.makespan_ms * 1.25;
    let chosen = min_energy_plan(scenario.profile(), n, &energy, budget)
        .expect("budget is feasible by construction");
    println!(
        "\nwith a {budget:.0} ms deadline (fastest × 1.25):\n  \
         latency-optimal plan: {:.0} ms, {:.1} J\n  \
         energy-optimal plan:  {:.0} ms, {:.1} J  ({:.0}% battery saved per burst)",
        fastest.makespan_ms,
        fastest.energy_mj / 1e3,
        chosen.makespan_ms,
        chosen.energy_mj / 1e3,
        (1.0 - chosen.energy_mj / fastest.energy_mj) * 100.0
    );
    assert!(chosen.makespan_ms <= budget + 1e-9);
    assert!(chosen.energy_mj <= fastest.energy_mj + 1e-9);
}
