//! Bring your own DNN: define a network layer by layer with the graph
//! builder, let shape inference derive tensor sizes and FLOPs, cluster
//! dominated cuts into virtual blocks, and plan a batch of jobs — the
//! full pipeline a downstream user would run for an unpublished model.
//!
//! The example network is a small branched CNN (two parallel towers
//! merged by concat, paper Fig. 3(a) style), so it also demonstrates
//! the general-structure path: articulation-chain collapse and the
//! per-path Alg. 3 partition.
//!
//! ```text
//! cargo run --release --example custom_dnn
//! ```

use mcdnn::prelude::*;
use mcdnn_graph::{cluster_virtual_blocks, collapse_to_line, Activation};
use mcdnn_partition::general_jps_plan;
use mcdnn_profile::DeviceModel;

fn build_custom() -> DnnGraph {
    let mut b = DnnGraph::builder("my_branchy_cnn");
    let relu = || LayerKind::Act(Activation::ReLU);
    let input = b.input(TensorShape::chw(3, 96, 96));
    let stem = b.chain(
        input,
        [
            LayerKind::conv(32, 3, 2, 1),
            relu(),
            LayerKind::maxpool(2, 2),
        ],
    );
    // Tower A: 3x3 convolutions.
    let a = b.chain(
        stem,
        [LayerKind::conv(64, 3, 1, 1), relu(), LayerKind::conv(64, 3, 1, 1), relu()],
    );
    // Tower B: pointwise bottleneck.
    let t = b.chain(stem, [LayerKind::pointwise(32), relu()]);
    let bb = b.chain(t, [LayerKind::conv(64, 3, 1, 1), relu()]);
    let merged = b.merge(&[a, bb], LayerKind::Concat);
    b.chain(
        merged,
        [
            LayerKind::maxpool(2, 2),
            LayerKind::GlobalAvgPool,
            LayerKind::Flatten,
            LayerKind::dense(40),
        ],
    );
    b.build().expect("custom model is well-formed")
}

fn main() {
    let graph = build_custom();
    println!(
        "built '{}': {} layers, {:.1} MFLOPs, {:.2} M params, line-structure: {}",
        graph.name(),
        graph.len(),
        graph.total_flops() as f64 / 1e6,
        graph.total_params() as f64 / 1e6,
        graph.is_line_structure()
    );

    // Graphviz for inspection.
    println!("\nGraphviz (first lines):");
    for line in mcdnn_graph::dot::to_dot(&graph).lines().take(6) {
        println!("  {line}");
    }

    // Collapse onto the articulation chain + cluster dominated cuts.
    let collapsed = collapse_to_line(&graph).expect("has separators");
    let (clustered, blocks) = cluster_virtual_blocks(&collapsed);
    println!(
        "\nline view: {} chain blocks -> {} cut candidates after clustering",
        collapsed.k(),
        clustered.k()
    );
    for (i, b) in blocks.iter().enumerate() {
        println!(
            "  block {}: chain layers {}..={} -> offload {} bytes",
            i + 1,
            b.start,
            b.end,
            clustered.layer(i + 1).out_bytes
        );
    }

    // Plan a batch over a mid-band link.
    let n = 8;
    let scenario = Scenario::new(
        clustered,
        DeviceModel::raspberry_pi4(),
        NetworkModel::new(8.0, 15.0),
        CloudModel::Device(DeviceModel::cloud_gtx1080()),
    );
    println!("\nplanning {n} jobs at 8 Mbps:");
    for s in [Strategy::LocalOnly, Strategy::CloudOnly, Strategy::JpsBestMix] {
        let plan = scenario.plan(s, n);
        println!("  {:>4}: {:.1} ms", s.label(), plan.makespan_ms);
    }

    // The general-structure planner can also cut the two towers
    // independently (Alg. 3).
    let gp = general_jps_plan(
        &graph,
        n,
        scenario.mobile(),
        scenario.network(),
        256,
    )
    .expect("general planning succeeds");
    println!(
        "\nAlg. 3 multipath: {} paths, cut nodes {:?}, makespan {:.1} ms (winner: {})",
        gp.path_count,
        gp.cut_nodes,
        gp.best_makespan_ms(),
        gp.winner()
    );
}
