//! Workspace facade for the `mcdnn` reproduction.
//!
//! Re-exports the public API of the [`mcdnn`] core crate so the root
//! examples and integration tests have a single import surface. The
//! crate docs below are the repository `README.md`, included verbatim
//! so its `rust` code blocks run as doctests (`cargo test --doc`) and
//! can never silently rot. See `DESIGN.md` for the paper-to-module
//! map.
#![doc = include_str!("../README.md")]

pub use mcdnn::*;
