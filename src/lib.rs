//! Workspace facade for the `mcdnn` reproduction.
//!
//! Re-exports the public API of the [`mcdnn`] core crate so the root
//! examples and integration tests have a single import surface. See
//! `README.md` for the architecture overview and `DESIGN.md` for the
//! paper-to-module map.

pub use mcdnn::*;
